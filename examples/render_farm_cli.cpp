// render_farm_cli: the downstream-user tool — parse a scene file and render
// it on a farm backend.
//
//   $ ./render_farm_cli scene.scene [--backend sim|threads|tcp]
//        [--scheme seq|frame|hybrid] [--workers N] [--speeds a,b,c]
//        [--threads N] [--block N] [--no-coherence] [--out DIR]
//        [--frame-codec raw|delta] [--no-pipeline]
//        [--journal FILE] [--resume] [--speculate] [--shards N]
//        [--trace-out FILE] [--metrics-out FILE] [--report]
//        [--status-port P] [--sample-interval S] [--flight-recorder [DIR]]
//        [--kill-worker R] [--kill-shard S] [--kill-scheduler]
//        [--chaos-seed N]
//        [--submit TENANT:WEIGHT:FIRST:COUNT[:QUOTA]] [--poll AT:INDEX]
//        [--cancel AT:INDEX]
//
// Every numeric flag is parsed with a validating helper: junk, trailing
// garbage, or out-of-range values print a message and exit 2 instead of
// silently becoming 0.
//
// Multi-tenant service: one or more --submit flags switch the farm into
// service mode — each SPEC submits frames [FIRST, FIRST+COUNT) of the scene
// as one shot for TENANT with the given weight (and optional in-flight
// quota), all at t = 0 through a scripted client. --poll AT:INDEX requests
// a status of the INDEX-th submit (0-based) AT seconds in; --cancel
// AT:INDEX cancels it. The run ends when every admitted shot is terminal;
// the CLI prints the shot table and per-tenant fairness accounting.
//
// --threads sets the render threads *inside* each worker (0 = one per
// hardware thread, the default; output is byte-identical for any value).
// The sim backend always renders with 1 thread — its compute time is
// virtual, so real render threads would only add wall-clock noise.
//
// Frame transport: --frame-codec delta (the default) sends incremental
// frames as value-diffed sparse runs in a compressed, CRC-checked envelope;
// raw sends the uncompressed payloads of earlier versions. Final frames are
// byte-identical either way — only wire bytes change. --no-pipeline
// disables the per-worker sender thread that overlaps each frame's
// encode+send with the next frame's render (threads/tcp backends only; the
// sim always sends inline).
//
// Crash recovery: --journal appends a crash-consistent record of every
// committed region-frame (fsync'd, CRC-framed) alongside atomically-renamed
// frame files; after a crash, rerunning with --resume replays the journal,
// keeps the completed frames, and renders only the remainder — the final
// animation is byte-identical to an uninterrupted run. --speculate
// duplicates the slowest in-flight task onto idle workers at the end of the
// run and keeps whichever copy finishes first.
//
// Sharded framebuffer: --shards N (default 1) splits the master into a thin
// scheduler plus N framebuffer shards, each owning a contiguous frame range
// — workers stream pixels straight to the owning shard, the scheduler sees
// only small digests. Output is byte-identical to --shards 1; a journaled
// sharded run must resume with the same shard count.
//
// Observability: --trace-out writes a Chrome trace-event JSON file (open it
// in Perfetto / chrome://tracing; under --backend sim the file is
// byte-identical across runs), --metrics-out writes the metrics snapshot as
// JSON, and --report prints the per-worker busy/comm/idle utilization table.
// The trace file is validated before writing; an invalid trace is a bug and
// exits non-zero.
//
// Live telemetry: --status-port P starts an HTTP listener on 127.0.0.1:P
// (0 = ephemeral; the bound port is printed) serving GET /metrics
// (Prometheus text) and GET /status (scheduler JSON: per-worker lease/task
// state, queue depth, shard progress, stragglers, recent throughput) while
// the render runs — wall-clock backends only, inert under sim.
// --sample-interval S sets the scheduler's telemetry sampling period in
// seconds (default 0.25 when the status port is on; under sim the interval
// is virtual time). --flight-recorder [DIR] keeps a bounded in-memory ring
// of recent trace events per rank and flushes trace-crash-<rank>.json into
// DIR (default .) when a rank dies — by fault injection or fatal signal.
// --kill-worker R injects a deterministic crash of worker rank R after its
// second frame result and enables short-lease failure detection, so the run
// exercises death → reclaim → recovery end to end (pair with
// --flight-recorder to get R's crash trace).
//
// Failure drills for the other rank classes: --kill-shard S kills
// framebuffer shard S (0-based; requires --shards > S and --journal) after
// its second committed digest and restarts it one second later — the
// scheduler rolls the shard's incomplete frames back and the replacement
// rebuilds committed state from its journal segment. --kill-scheduler kills
// rank 0 after its third task assignment (sim backend with --journal only);
// the run ends partial and a rerun with --resume restarts the scheduler
// from its checkpoint, byte-identical to an uninterrupted run.
// --chaos-seed N expands seed N into a randomized fault schedule (kills,
// drops, duplicates, reorders, delays — exactly the soak harness's
// generator), prints it, and runs under it; the same seed and shape always
// replays the same schedule. All drills flush trace-crash-<rank>.json for
// every induced death when --flight-recorder is armed.
//
// With --backend threads or tcp, rendering runs with real parallelism on
// this machine (wall-clock timing); with sim (default) it runs on the
// deterministic virtual cluster with per-worker speed factors.
//
// Camera cuts in the scene are reported up front; the coherence renderer
// restarts automatically at each cut (a stationary camera per shot is the
// algorithm's requirement, Section 3 of the paper).
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/fault/chaos.h"
#include "src/obs/flight_recorder.h"
#include "src/par/protocol.h"
#include "src/par/render_farm.h"
#include "src/par/serial.h"
#include "src/scene/scene_parser.h"

using namespace now;

namespace {

// -- validated numeric parsing ---------------------------------------------
// Every numeric operand goes through one of these: junk ("banana"), trailing
// garbage ("3x"), and out-of-range values all die with a message and exit 2
// instead of atoi's silent 0.

[[noreturn]] void flag_die(const char* flag, const std::string& text,
                           const std::string& why) {
  std::fprintf(stderr, "%s: invalid value '%s' (%s)\n", flag, text.c_str(),
               why.c_str());
  std::exit(2);
}

long long parse_int_flag(const char* flag, const std::string& text,
                         long long min, long long max) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    flag_die(flag, text, "expected an integer");
  }
  if (errno == ERANGE || v < min || v > max) {
    flag_die(flag, text, "expected an integer in [" + std::to_string(min) +
                             ", " + std::to_string(max) + "]");
  }
  return v;
}

std::uint64_t parse_u64_flag(const char* flag, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  if (!text.empty() && text[0] == '-') {
    flag_die(flag, text, "expected a non-negative integer");
  }
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    flag_die(flag, text, "expected a non-negative integer");
  }
  if (errno == ERANGE) flag_die(flag, text, "out of range");
  return v;
}

double parse_double_flag(const char* flag, const std::string& text,
                         double min, double max) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || !std::isfinite(v)) {
    flag_die(flag, text, "expected a number");
  }
  if (errno == ERANGE || v < min || v > max) {
    flag_die(flag, text, "expected a number in [" + std::to_string(min) +
                             ", " + std::to_string(max) + "]");
  }
  return v;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t next = s.find(sep, pos);
    out.push_back(s.substr(pos, next - pos));
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return out;
}

std::vector<double> parse_speeds(const std::string& csv) {
  std::vector<double> out;
  for (const std::string& part : split(csv, ',')) {
    out.push_back(parse_double_flag("--speeds", part, 1e-6, 1e6));
  }
  return out;
}

/// TENANT:WEIGHT:FIRST:COUNT[:QUOTA] → one t=0 submit action.
ClientAction parse_submit_spec(const std::string& spec) {
  const std::vector<std::string> parts = split(spec, ':');
  if (parts.size() < 4 || parts.size() > 5 || parts[0].empty()) {
    flag_die("--submit", spec, "expected TENANT:WEIGHT:FIRST:COUNT[:QUOTA]");
  }
  ClientAction a;
  a.kind = ClientActionKind::kSubmit;
  a.submit.tenant = parts[0];
  a.submit.weight = parse_double_flag("--submit", parts[1], 1e-6, 1e6);
  a.submit.first_frame = static_cast<std::int32_t>(
      parse_int_flag("--submit", parts[2], 0, 1 << 24));
  a.submit.frame_count = static_cast<std::int32_t>(
      parse_int_flag("--submit", parts[3], 1, 1 << 24));
  if (parts.size() == 5) {
    a.submit.quota = static_cast<std::int32_t>(
        parse_int_flag("--submit", parts[4], 0, 1 << 20));
  }
  return a;
}

/// AT:INDEX → a status poll / cancel of the INDEX-th submit at AT seconds.
ClientAction parse_shot_ref(const char* flag, const std::string& spec,
                            ClientActionKind kind) {
  const std::vector<std::string> parts = split(spec, ':');
  if (parts.size() != 2) flag_die(flag, spec, "expected AT:INDEX");
  ClientAction a;
  a.kind = kind;
  a.at_seconds = parse_double_flag(flag, parts[0], 0.0, 1e9);
  a.submit_index = static_cast<int>(parse_int_flag(flag, parts[1], 0, 1 << 20));
  return a;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream f(path, std::ios::binary);
  f << contents;
  return f.good();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s scene.scene [options]\n", argv[0]);
    return 2;
  }
  const std::string scene_path = argv[1];
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.workers = 3;
  std::string out_dir = ".";
  std::string trace_path;
  std::string metrics_path;
  bool report = false;
  bool kill_worker = false;
  int kill_shard = -1;
  bool kill_scheduler = false;
  bool chaos = false;
  std::uint64_t chaos_seed = 0;
  ClientScript service_script;  // --submit/--poll/--cancel actions
  // Shared by every failure drill. Progress leases must outlast an honest
  // frame render or healthy workers get written off as dead: under sim a
  // demo frame costs minutes of *virtual* time (which is free to wait out),
  // so leases are generous there; under threads/tcp frames render at real
  // speed and short wall-clock leases keep detection snappy.
  const auto arm_drill_leases = [&config] {
    config.fault.enabled = true;
    if (config.backend == FarmBackend::kSim) {
      config.fault.lease_base_seconds = 900.0;
      config.fault.lease_per_frame_seconds = 240.0;
      config.fault.ping_grace_seconds = 300.0;
    } else {
      config.fault.lease_base_seconds = 5.0;
      config.fault.lease_per_frame_seconds = 0.5;
      config.fault.ping_grace_seconds = 2.0;
    }
  };

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--backend" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "sim") config.backend = FarmBackend::kSim;
      else if (v == "threads") config.backend = FarmBackend::kThreads;
      else if (v == "tcp") config.backend = FarmBackend::kTcp;
      else { std::fprintf(stderr, "unknown backend '%s'\n", v.c_str()); return 2; }
    } else if (arg == "--scheme" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "seq") config.partition.scheme = PartitionScheme::kSequenceDivision;
      else if (v == "frame") config.partition.scheme = PartitionScheme::kFrameDivision;
      else if (v == "hybrid") config.partition.scheme = PartitionScheme::kHybrid;
      else { std::fprintf(stderr, "unknown scheme '%s'\n", v.c_str()); return 2; }
    } else if (arg == "--workers" && i + 1 < argc) {
      config.workers =
          static_cast<int>(parse_int_flag("--workers", argv[++i], 1, 4096));
    } else if (arg == "--speeds" && i + 1 < argc) {
      config.worker_speeds = parse_speeds(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      config.coherence.threads =
          static_cast<int>(parse_int_flag("--threads", argv[++i], 0, 4096));
    } else if (arg == "--block" && i + 1 < argc) {
      config.partition.block_size =
          static_cast<int>(parse_int_flag("--block", argv[++i], 1, 65536));
    } else if (arg == "--no-coherence") {
      config.coherence.enabled = false;
    } else if (arg == "--frame-codec" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (!parse_frame_codec(v, &config.frame_codec)) {
        std::fprintf(stderr, "unknown frame codec '%s'\n", v.c_str());
        return 2;
      }
    } else if (arg == "--no-pipeline") {
      config.pipeline = false;
    } else if (arg == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--journal" && i + 1 < argc) {
      config.journal_path = argv[++i];
    } else if (arg == "--resume") {
      config.resume = true;
    } else if (arg == "--speculate") {
      config.speculation = true;
    } else if (arg == "--shards" && i + 1 < argc) {
      config.shards =
          static_cast<int>(parse_int_flag("--shards", argv[++i], 1, 1024));
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--status-port" && i + 1 < argc) {
      config.obs.status_port = static_cast<int>(
          parse_int_flag("--status-port", argv[++i], -1, 65535));
    } else if (arg == "--sample-interval" && i + 1 < argc) {
      config.obs.sample_interval_seconds =
          parse_double_flag("--sample-interval", argv[++i], 0.0, 86400.0);
    } else if (arg == "--flight-recorder") {
      config.obs.flight_recorder = true;
      // Optional directory operand (next arg not starting with --).
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        config.obs.flight_dir = argv[++i];
      }
    } else if (arg == "--kill-worker" && i + 1 < argc) {
      // Deterministic fail-stop: the rank dies right after delivering its
      // 2nd frame result. Enables lease-based detection with short leases so
      // the run recovers (and, with --flight-recorder, flushes the dead
      // rank's crash trace) without external process surgery.
      FaultEvent ev;
      ev.kind = FaultKind::kCrash;
      ev.rank =
          static_cast<int>(parse_int_flag("--kill-worker", argv[++i], 1, 4096));
      ev.after_frames = 2;
      config.fault_plan.events.push_back(ev);
      kill_worker = true;
    } else if (arg == "--kill-shard" && i + 1 < argc) {
      // Shard index, resolved to its world rank after all flags are parsed
      // (the rank depends on --workers/--speeds and --shards).
      kill_shard =
          static_cast<int>(parse_int_flag("--kill-shard", argv[++i], 0, 1023));
    } else if (arg == "--kill-scheduler") {
      kill_scheduler = true;
    } else if (arg == "--chaos-seed" && i + 1 < argc) {
      chaos = true;
      chaos_seed = parse_u64_flag("--chaos-seed", argv[++i]);
    } else if (arg == "--submit" && i + 1 < argc) {
      service_script.actions.push_back(parse_submit_spec(argv[++i]));
    } else if (arg == "--poll" && i + 1 < argc) {
      service_script.actions.push_back(
          parse_shot_ref("--poll", argv[++i], ClientActionKind::kStatus));
    } else if (arg == "--cancel" && i + 1 < argc) {
      service_script.actions.push_back(
          parse_shot_ref("--cancel", argv[++i], ClientActionKind::kCancel));
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }

  const int worker_count = config.worker_speeds.empty()
                               ? config.workers
                               : static_cast<int>(config.worker_speeds.size());
  const bool service = !service_script.actions.empty();
  if (service) {
    bool any_submit = false;
    for (const ClientAction& a : service_script.actions) {
      if (a.kind == ClientActionKind::kSubmit) any_submit = true;
    }
    if (!any_submit) {
      std::fprintf(stderr,
                   "--poll/--cancel need at least one --submit to target\n");
      return 2;
    }
    config.service.enabled = true;
    config.service.clients.push_back(service_script);
  }
  if (kill_worker) arm_drill_leases();
  if (kill_shard >= 0) {
    if (config.shards <= 1 || kill_shard >= config.shards) {
      std::fprintf(stderr,
                   "--kill-shard %d needs --shards greater than %d\n",
                   kill_shard, kill_shard);
      return 2;
    }
    if (config.journal_path.empty()) {
      std::fprintf(stderr,
                   "--kill-shard needs --journal: the replacement rebuilds "
                   "from its journal segment\n");
      return 2;
    }
    const int rank = 1 + worker_count + kill_shard;
    config.fault_plan.events.push_back(FaultPlan::crash_after_frames(rank, 2));
    config.fault_plan.events.push_back(FaultPlan::rejoin_after_crash(rank, 1.0));
    arm_drill_leases();
    std::printf("drill: shard %d (rank %d) dies after its 2nd digest, "
                "restarts 1s later\n", kill_shard, rank);
  }
  if (kill_scheduler) {
    if (config.backend != FarmBackend::kSim || config.journal_path.empty()) {
      std::fprintf(stderr,
                   "--kill-scheduler needs --backend sim and --journal (the "
                   "restart path is a --resume rerun)\n");
      return 2;
    }
    config.fault_plan.events.push_back(FaultPlan::crash_after_frames(0, 3));
    std::printf("drill: scheduler dies after its 3rd task assignment\n");
  }
  if (chaos) {
    ChaosConfig cc;
    cc.seed = chaos_seed;
    cc.worker_count = worker_count;
    cc.shard_count = config.shards;
    cc.journaled = !config.journal_path.empty();
    cc.sim = config.backend == FarmBackend::kSim;
    cc.result_tag = kTagFrameResult;
    const FaultPlan plan = make_chaos_plan(cc);
    config.fault_plan.events.insert(config.fault_plan.events.end(),
                                    plan.events.begin(), plan.events.end());
    arm_drill_leases();
    std::printf("chaos seed %llu:\n%s",
                static_cast<unsigned long long>(chaos_seed),
                describe_fault_plan(plan).c_str());
  }

  const ParseResult parsed = parse_scene_file(scene_path);
  if (!parsed.ok) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
    return 1;
  }
  const AnimatedScene& scene = parsed.scene;
  std::printf("scene: %d objects, %d materials, %d lights, %d frames at "
              "%dx%d\n",
              scene.object_count(), scene.material_count(),
              scene.light_count(), scene.frame_count(), scene.width(),
              scene.height());

  const auto shots = scene.split_shots();
  std::printf("%zu shot(s):", shots.size());
  for (const auto& shot : shots) {
    std::printf(" [%d..%d]", shot.first_frame,
                shot.first_frame + shot.frame_count - 1);
  }
  std::printf("  (coherence restarts at every cut)\n");
  std::printf("backend=%s scheme=%s workers=%d coherence=%s\n\n",
              to_string(config.backend), to_string(config.partition.scheme),
              config.worker_speeds.empty()
                  ? config.workers
                  : static_cast<int>(config.worker_speeds.size()),
              config.coherence.enabled ? "on" : "off");

  config.output_dir = out_dir;
  config.output_prefix = "farm";
  config.obs.trace = !trace_path.empty() || report;
  FarmResult result;
  try {
    validate_farm_config(scene, config);
    // render_farm can also throw invalid_argument: resume replay rejects a
    // journal whose --shards count differs from this run's.
    result = render_farm(scene, config);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "invalid configuration: %s\n", e.what());
    return 2;
  }

  if (result.resume.resumed) {
    std::printf("resume: %d frame(s) restored, %d demoted, %lld journal "
                "record(s) replayed%s\n",
                result.resume.frames_restored, result.resume.frames_demoted,
                static_cast<long long>(result.resume.records_replayed),
                result.resume.journal_truncated ? " (torn tail discarded)"
                                                : "");
  }
  std::printf("time: %s (%s)\n", format_hms(result.elapsed_seconds).c_str(),
              config.backend == FarmBackend::kSim ? "virtual cluster time"
                                                  : "wall clock");
  std::printf("rays: %llu   pixels recomputed: %lld   full renders: %lld\n",
              static_cast<unsigned long long>(result.master.rays_total),
              static_cast<long long>(result.master.pixels_recomputed_total),
              static_cast<long long>(result.master.full_renders));
  std::printf("messages: %lld (%.2f MB)   adaptive splits: %lld\n",
              static_cast<long long>(result.runtime.messages),
              static_cast<double>(result.runtime.bytes) / 1e6,
              static_cast<long long>(result.master.adaptive_splits));
  if (config.fault.enabled || !config.fault_plan.events.empty()) {
    std::printf("recovery: %d death(s) detected, %d worker rejoin(s), "
                "%d shard failure(s), %d shard rebuild(s), %lld frame(s) "
                "reassigned\n",
                result.faults.deaths_detected, result.faults.workers_rejoined,
                result.faults.shards_failed, result.faults.shards_rejoined,
                static_cast<long long>(result.faults.frames_reassigned));
  }
  bool service_failed = false;
  if (service) {
    // Service mode renders the admitted shots, not the whole scene: report
    // the shot table + per-tenant accounting instead of the frame count.
    std::printf("\n%5s %-12s %-10s %10s %8s\n", "shot", "tenant", "phase",
                "frames", "range");
    bool all_terminal = true;
    for (const FarmResult::ShotResult& shot : result.shots) {
      const ShotSummary& s = shot.summary;
      if (s.phase == ShotPhase::kActive) all_terminal = false;
      std::printf("%5d %-12s %-10s %6d/%-3d [%d..%d]\n", s.shot_id,
                  s.tenant.c_str(), to_string(s.phase), s.frames_done,
                  s.frame_count, s.scene_first_frame,
                  s.scene_first_frame + s.frame_count - 1);
    }
    std::printf("%5s %-12s %8s %12s %10s %8s\n", "", "tenant", "weight",
                "units", "frames", "peak");
    for (const TenantSummary& t : result.tenants) {
      std::printf("%5s %-12s %8.2f %12lld %10lld %8d\n", "", t.name.c_str(),
                  t.weight, static_cast<long long>(t.units_assigned),
                  static_cast<long long>(t.frames_committed),
                  t.peak_inflight);
    }
    int rejects = 0;
    for (const ClientReport& c : result.clients) rejects += c.rejects;
    if (rejects > 0) {
      for (const ClientReport& c : result.clients) {
        for (std::size_t s = 0; s < c.errors.size(); ++s) {
          if (!c.errors[s].empty()) {
            std::fprintf(stderr, "submit %zu rejected: %s\n", s,
                         c.errors[s].c_str());
          }
        }
      }
    }
    if (!all_terminal) {
      std::fprintf(stderr, "INCOMPLETE: a shot never reached a terminal "
                           "phase\n");
    }
    service_failed = !all_terminal || rejects > 0;
  }
  const long long frames_done = result.master.frames_completed +
                                result.resume.frames_restored;
  const bool incomplete =
      !service && frames_done < scene.frame_count();
  if (incomplete && !kill_scheduler) {
    std::fprintf(stderr,
                 "INCOMPLETE: %lld of %d frame(s) finished — the farm "
                 "stopped before the render was done\n",
                 frames_done, scene.frame_count());
  } else if (!incomplete && !service) {
    std::printf("frames written to %s/farm_NNNN.tga\n", out_dir.c_str());
  }
  if (kill_scheduler) {
    std::printf("scheduler was killed mid-run: rerun with --resume to "
                "restart it from the journal's checkpoint\n");
  }
  if (result.status_port >= 0) {
    std::printf("status endpoint: http://127.0.0.1:%d served %lld "
                "request(s) (/metrics, /status)\n",
                result.status_port,
                static_cast<long long>(result.status_requests));
  }
  if (config.obs.flight_recorder) {
    std::printf("flight recorder: armed, crash traces land in %s/"
                "trace-crash-<rank>.json\n",
                config.obs.flight_dir.c_str());
  }

  if (!trace_path.empty()) {
    const std::string json = chrome_trace_json(result.trace_events);
    std::string error;
    if (!validate_chrome_trace(json, &error)) {
      std::fprintf(stderr, "trace validation failed: %s\n", error.c_str());
      return 1;
    }
    if (!write_file(trace_path, json)) {
      std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("trace: %zu events -> %s (load in Perfetto or "
                "chrome://tracing)\n",
                result.trace_events.size(), trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    const std::string json = result.metrics.to_json();
    std::string error;
    if (!json_syntax_ok(json, &error)) {
      std::fprintf(stderr, "metrics JSON invalid: %s\n", error.c_str());
      return 1;
    }
    if (!write_file(metrics_path, json)) {
      std::fprintf(stderr, "failed to write %s\n", metrics_path.c_str());
      return 1;
    }
    std::printf("metrics: %s\n", metrics_path.c_str());
  }
  if (report) {
    std::printf("\n%s", result.utilization.to_text().c_str());
  }
  // A scheduler-kill drill is *supposed* to end partial (the restart is a
  // --resume rerun); every other incomplete render is a failure.
  if (service) return service_failed ? 1 : 0;
  return (incomplete && !kill_scheduler) ? 1 : 0;
}
