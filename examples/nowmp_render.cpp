// A minimal PVM-style render farm written directly against the nowmp
// blocking message-passing API — the idiom of the paper's original
// implementation ("The algorithm was implemented in C as an addition to
// ... POV-Ray" with PVM 3.1 coordinating the processing).
//
// Master (task 0) scatters scanline bands of one Newton-cradle frame on
// demand; slaves render their band and send the pixels back; the master
// assembles and writes the targa. Contrast with examples/newton_animation,
// which uses the actor-based farm and the virtual cluster.
//
//   $ ./nowmp_render [--tasks N] [--band H] [--out DIR]
#include <cstdio>
#include <cstring>
#include <string>

#include "src/image/image_io.h"
#include "src/net/nowmp.h"
#include "src/scene/builtin_scenes.h"
#include "src/trace/render.h"
#include "src/trace/uniform_grid.h"

using namespace now;

namespace {

constexpr int kTagBand = 1;    // master -> slave: y0, height
constexpr int kTagPixels = 2;  // slave -> master: y0, height, rgb bytes
constexpr int kTagIdle = 3;    // slave -> master: ready for work
constexpr int kTagDone = 4;    // master -> slave: no more bands

}  // namespace

int main(int argc, char** argv) {
  int ntasks = 4;
  int band_height = 16;
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tasks" && i + 1 < argc) ntasks = std::atoi(argv[++i]);
    else if (arg == "--band" && i + 1 < argc) band_height = std::atoi(argv[++i]);
    else if (arg == "--out" && i + 1 < argc) out_dir = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--tasks N] [--band H] [--out DIR]\n",
                   argv[0]);
      return 2;
    }
  }

  CradleParams params;
  params.frames = 23;  // we render frame 22 (the paper's Figure 5)
  const AnimatedScene scene = newton_cradle_scene(params);
  const World world = scene.world_at(22);
  const int width = scene.width();
  const int height = scene.height();

  Framebuffer image(width, height);

  nowmp::run(
      ntasks,
      [&](nowmp::Task& t) {  // ---- master ----
        int next_y = 0;
        int outstanding = 0;
        int idle_slaves = 0;
        while (idle_slaves < t.ntasks() - 1 || outstanding > 0) {
          t.recv(-1, -1);
          if (t.recv_tag() == kTagIdle) {
            if (next_y < height) {
              const int h = std::min(band_height, height - next_y);
              t.init_send();
              t.pack_i32(next_y);
              t.pack_i32(h);
              t.send(t.recv_source(), kTagBand);
              next_y += h;
              ++outstanding;
            } else {
              t.init_send();
              t.send(t.recv_source(), kTagDone);
              ++idle_slaves;
            }
          } else if (t.recv_tag() == kTagPixels) {
            const int y0 = t.unpack_i32();
            const int h = t.unpack_i32();
            const std::string bytes = t.unpack_str();
            const auto* px = reinterpret_cast<const unsigned char*>(bytes.data());
            for (int y = y0; y < y0 + h; ++y) {
              for (int x = 0; x < width; ++x) {
                image.set(x, y, Rgb8{px[0], px[1], px[2]});
                px += 3;
              }
            }
            --outstanding;
          }
        }
      },
      [&](nowmp::Task& t) {  // ---- slave ----
        const UniformGridAccelerator accel(world);
        Tracer tracer(world, accel);
        Framebuffer fb(width, height);
        t.init_send();
        t.send(0, kTagIdle);
        for (;;) {
          t.recv(0, -1);
          if (t.recv_tag() == kTagDone) return;
          const int y0 = t.unpack_i32();
          const int h = t.unpack_i32();
          render_region(&tracer, &fb, {0, y0, width, h});
          std::string bytes;
          bytes.reserve(static_cast<std::size_t>(width) * h * 3);
          for (int y = y0; y < y0 + h; ++y) {
            for (int x = 0; x < width; ++x) {
              const Rgb8 p = fb.at(x, y);
              bytes.push_back(static_cast<char>(p.r));
              bytes.push_back(static_cast<char>(p.g));
              bytes.push_back(static_cast<char>(p.b));
            }
          }
          t.init_send();
          t.pack_i32(y0);
          t.pack_i32(h);
          t.pack_str(bytes);
          t.send(0, kTagPixels);
          t.init_send();
          t.send(0, kTagIdle);
        }
      });

  const std::string path = out_dir + "/nowmp_newton22.tga";
  if (!write_tga(image, path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }

  // Verify against a serial render.
  const Framebuffer reference = render_world(world, width, height);
  if (!(image == reference)) {
    std::fprintf(stderr, "distributed image differs from serial render!\n");
    return 1;
  }
  std::printf("rendered %dx%d Newton frame 22 with %d PVM-style tasks "
              "(%d-row bands)\n",
              width, height, ntasks, band_height);
  std::printf("wrote %s (verified identical to a serial render)\n",
              path.c_str());
  return 0;
}
