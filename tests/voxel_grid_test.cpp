#include "src/geom/voxel_grid.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "src/math/rng.h"

namespace now {
namespace {

TEST(VoxelGrid, BasicGeometry) {
  const VoxelGrid grid({{0, 0, 0}, {4, 2, 8}}, 4, 2, 8);
  EXPECT_EQ(grid.cell_count(), 64);
  EXPECT_EQ(grid.cell_size(), Vec3(1, 1, 1));
  const Aabb c = grid.cell_bounds(1, 0, 3);
  EXPECT_EQ(c.lo, Vec3(1, 0, 3));
  EXPECT_EQ(c.hi, Vec3(2, 1, 4));
}

TEST(VoxelGrid, LocateClamps) {
  const VoxelGrid grid({{0, 0, 0}, {4, 4, 4}}, 4, 4, 4);
  int ix, iy, iz;
  grid.locate({2.5, 0.1, 3.9}, &ix, &iy, &iz);
  EXPECT_EQ(ix, 2); EXPECT_EQ(iy, 0); EXPECT_EQ(iz, 3);
  grid.locate({-5, 10, 4.0}, &ix, &iy, &iz);
  EXPECT_EQ(ix, 0); EXPECT_EQ(iy, 3); EXPECT_EQ(iz, 3);
}

TEST(VoxelGrid, CellRange) {
  const VoxelGrid grid({{0, 0, 0}, {4, 4, 4}}, 4, 4, 4);
  int ix0, iy0, iz0, ix1, iy1, iz1;
  ASSERT_TRUE(grid.cell_range({{0.5, 0.5, 0.5}, {2.5, 1.5, 3.5}}, &ix0, &iy0,
                              &iz0, &ix1, &iy1, &iz1));
  EXPECT_EQ(ix0, 0); EXPECT_EQ(ix1, 2);
  EXPECT_EQ(iy0, 0); EXPECT_EQ(iy1, 1);
  EXPECT_EQ(iz0, 0); EXPECT_EQ(iz1, 3);
  EXPECT_FALSE(grid.cell_range({{9, 9, 9}, {10, 10, 10}}, &ix0, &iy0, &iz0,
                               &ix1, &iy1, &iz1));
}

TEST(VoxelGrid, WalkStraightThrough) {
  const VoxelGrid grid({{0, 0, 0}, {4, 4, 4}}, 4, 4, 4);
  std::vector<int> xs;
  grid.walk({{-1, 0.5, 0.5}, {1, 0, 0}}, 0.0, kRayInfinity,
            [&](int ix, int iy, int iz, double, double) {
              EXPECT_EQ(iy, 0);
              EXPECT_EQ(iz, 0);
              xs.push_back(ix);
              return true;
            });
  EXPECT_EQ(xs, (std::vector<int>{0, 1, 2, 3}));
}

TEST(VoxelGrid, WalkRespectsSegmentEnd) {
  const VoxelGrid grid({{0, 0, 0}, {4, 4, 4}}, 4, 4, 4);
  std::vector<int> xs;
  // Segment ends at x = 1.5 (t = 2.5 from origin -1).
  grid.walk({{-1, 0.5, 0.5}, {1, 0, 0}}, 0.0, 2.5,
            [&](int ix, int, int, double, double) {
              xs.push_back(ix);
              return true;
            });
  EXPECT_EQ(xs, (std::vector<int>{0, 1}));
}

TEST(VoxelGrid, WalkEarlyStop) {
  const VoxelGrid grid({{0, 0, 0}, {4, 4, 4}}, 4, 4, 4);
  int visits = 0;
  grid.walk({{-1, 0.5, 0.5}, {1, 0, 0}}, 0.0, kRayInfinity,
            [&](int, int, int, double, double) {
              ++visits;
              return visits < 2;
            });
  EXPECT_EQ(visits, 2);
}

TEST(VoxelGrid, WalkMissesGridEntirely) {
  const VoxelGrid grid({{0, 0, 0}, {4, 4, 4}}, 4, 4, 4);
  int visits = 0;
  grid.walk({{-1, 10, 0.5}, {1, 0, 0}}, 0.0, kRayInfinity,
            [&](int, int, int, double, double) {
              ++visits;
              return true;
            });
  EXPECT_EQ(visits, 0);
}

TEST(VoxelGrid, WalkDiagonalVisitsConnectedCells) {
  const VoxelGrid grid({{0, 0, 0}, {4, 4, 4}}, 4, 4, 4);
  std::vector<std::array<int, 3>> cells;
  grid.walk({{-0.5, -0.5, -0.5}, Vec3(1, 1, 1).normalized()}, 0.0,
            kRayInfinity, [&](int ix, int iy, int iz, double, double) {
              cells.push_back({ix, iy, iz});
              return true;
            });
  ASSERT_GE(cells.size(), 4u);
  // Successive cells differ by exactly one step on one axis (6-connected).
  for (std::size_t i = 1; i < cells.size(); ++i) {
    int diff = 0;
    for (int a = 0; a < 3; ++a) diff += std::abs(cells[i][a] - cells[i - 1][a]);
    EXPECT_EQ(diff, 1) << "step " << i;
  }
}

TEST(VoxelGrid, WalkZeroComponentDirection) {
  const VoxelGrid grid({{0, 0, 0}, {4, 4, 4}}, 4, 4, 4);
  std::vector<int> ys;
  grid.walk({{1.5, -1, 1.5}, {0, 1, 0}}, 0.0, kRayInfinity,
            [&](int ix, int iy, int iz, double, double) {
              EXPECT_EQ(ix, 1);
              EXPECT_EQ(iz, 1);
              ys.push_back(iy);
              return true;
            });
  EXPECT_EQ(ys, (std::vector<int>{0, 1, 2, 3}));
}

TEST(VoxelGrid, WalkCoversEveryCellARayPierces) {
  // Oracle: dense sampling along random rays; every cell containing a
  // sample must be visited by the walk (DDA completeness).
  Rng rng(41);
  const VoxelGrid grid({{-2, -2, -2}, {2, 2, 2}}, 7, 5, 9);
  for (int iter = 0; iter < 200; ++iter) {
    const Ray ray{rng.point_in_box({-4, -4, -4}, {4, 4, 4}),
                  rng.unit_vector()};
    std::set<int> visited;
    grid.walk(ray, 0.0, 20.0, [&](int ix, int iy, int iz, double, double) {
      visited.insert(grid.cell_index(ix, iy, iz));
      return true;
    });
    for (double t = 0.0; t < 20.0; t += 0.01) {
      const Vec3 p = ray.at(t);
      if (!grid.bounds().contains(p)) continue;
      // Skip samples within epsilon of a cell boundary (either cell is
      // acceptable there).
      bool near_boundary = false;
      for (int axis = 0; axis < 3; ++axis) {
        const double u = (p[axis] - grid.bounds().lo[axis]) /
                         grid.cell_size()[axis];
        if (std::fabs(u - std::round(u)) < 1e-6) near_boundary = true;
      }
      if (near_boundary) continue;
      int ix, iy, iz;
      grid.locate(p, &ix, &iy, &iz);
      ASSERT_TRUE(visited.count(grid.cell_index(ix, iy, iz)) == 1)
          << "iter " << iter << " t=" << t;
    }
  }
}

TEST(VoxelGrid, HeuristicRespectsLimits) {
  const VoxelGrid g = VoxelGrid::heuristic({{0, 0, 0}, {10, 1, 1}}, 100, 3.0, 32);
  EXPECT_GE(g.nx(), 1);
  EXPECT_LE(g.nx(), 32);
  EXPECT_GE(g.ny(), 1);
  // Cells are roughly cubical: x axis gets more cells than y.
  EXPECT_GT(g.nx(), g.ny());
}

TEST(VoxelGrid, HeuristicHandlesEmptyExtent) {
  const VoxelGrid g = VoxelGrid::heuristic(Aabb{}, 10);
  EXPECT_TRUE(g.valid());
  EXPECT_GE(g.cell_count(), 1);
}

}  // namespace
}  // namespace now
