#include "src/image/pixel_codec.h"

#include <gtest/gtest.h>

#include "src/math/rng.h"

namespace now {
namespace {

Framebuffer gradient(int w, int h) {
  Framebuffer fb(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      fb.set(x, y, Rgb8{static_cast<std::uint8_t>(x * 7),
                        static_cast<std::uint8_t>(y * 11),
                        static_cast<std::uint8_t>((x + y) * 3)});
    }
  }
  return fb;
}

TEST(PixelCodec, DensePayloadRoundTrip) {
  const Framebuffer fb = gradient(16, 12);
  const PixelRect rect{4, 2, 8, 6};
  const PixelPayload payload = make_dense_payload(fb, rect);
  EXPECT_TRUE(payload.dense);
  EXPECT_EQ(payload.carried_pixels(), rect.area());

  const std::string bytes = encode_payload(payload);
  EXPECT_EQ(bytes.size(), encoded_size(payload));
  PixelPayload decoded;
  ASSERT_TRUE(decode_payload(&decoded, bytes));

  Framebuffer out(16, 12);
  apply_payload(&out, decoded);
  for (int y = 0; y < 12; ++y) {
    for (int x = 0; x < 16; ++x) {
      if (rect.contains(x, y)) {
        EXPECT_EQ(out.at(x, y), fb.at(x, y)) << x << "," << y;
      } else {
        EXPECT_EQ(out.at(x, y), (Rgb8{0, 0, 0})) << x << "," << y;
      }
    }
  }
}

TEST(PixelCodec, SparsePayloadCarriesOnlyUpdatedPixels) {
  const Framebuffer fb = gradient(20, 20);
  const PixelRect rect{0, 0, 20, 20};
  PixelMask updated(20, 20);
  updated.set(3, 4, true);
  updated.set(4, 4, true);
  updated.set(5, 4, true);   // one run of 3
  updated.set(10, 15, true); // isolated pixel

  const PixelPayload payload = make_sparse_payload(fb, rect, updated);
  ASSERT_FALSE(payload.dense);
  EXPECT_EQ(payload.carried_pixels(), 4);
  ASSERT_EQ(payload.runs.size(), 2u);
  EXPECT_EQ(payload.runs[0].pixels.size(), 3u);

  Framebuffer out(20, 20);
  apply_payload(&out, payload);
  EXPECT_EQ(out.at(4, 4), fb.at(4, 4));
  EXPECT_EQ(out.at(10, 15), fb.at(10, 15));
  EXPECT_EQ(out.at(0, 0), (Rgb8{0, 0, 0}));
}

TEST(PixelCodec, SparseRunsDoNotWrapRows) {
  const Framebuffer fb = gradient(8, 4);
  const PixelRect rect{0, 0, 8, 4};
  PixelMask updated(8, 4, true);  // everything updated
  // All-updated falls back to dense (sparse would be larger).
  const PixelPayload payload = make_sparse_payload(fb, rect, updated);
  EXPECT_TRUE(payload.dense);
}

TEST(PixelCodec, SparseRowBoundary) {
  const Framebuffer fb = gradient(4, 16);
  const PixelRect rect{0, 0, 4, 16};
  PixelMask updated(4, 16);
  // Last pixel of row 1 and first of row 2: must be two runs.
  updated.set(3, 1, true);
  updated.set(0, 2, true);
  const PixelPayload payload = make_sparse_payload(fb, rect, updated);
  ASSERT_FALSE(payload.dense);
  EXPECT_EQ(payload.runs.size(), 2u);
}

TEST(PixelCodec, SparseEncodedRoundTrip) {
  Rng rng(99);
  const Framebuffer fb = gradient(32, 32);
  const PixelRect rect{8, 8, 16, 16};
  PixelMask updated(32, 32);
  for (int i = 0; i < 40; ++i) {
    updated.set(8 + static_cast<int>(rng.next_below(16)),
                8 + static_cast<int>(rng.next_below(16)), true);
  }
  const PixelPayload payload = make_sparse_payload(fb, rect, updated);
  const std::string bytes = encode_payload(payload);
  EXPECT_EQ(bytes.size(), encoded_size(payload));
  PixelPayload decoded;
  ASSERT_TRUE(decode_payload(&decoded, bytes));

  Framebuffer a(32, 32), b(32, 32);
  apply_payload(&a, payload);
  apply_payload(&b, decoded);
  EXPECT_EQ(a, b);
}

TEST(PixelCodec, DecodeRejectsGarbage) {
  PixelPayload payload;
  EXPECT_FALSE(decode_payload(&payload, ""));
  EXPECT_FALSE(decode_payload(&payload, "garbage data here"));
}

TEST(PixelCodec, DecodeRejectsTruncation) {
  const Framebuffer fb = gradient(8, 8);
  std::string bytes = encode_payload(make_dense_payload(fb, {0, 0, 8, 8}));
  bytes.resize(bytes.size() - 1);
  PixelPayload payload;
  EXPECT_FALSE(decode_payload(&payload, bytes));
}

TEST(PixelCodec, DecodeRejectsTrailingBytes) {
  const Framebuffer fb = gradient(4, 4);
  std::string bytes = encode_payload(make_dense_payload(fb, {0, 0, 4, 4}));
  bytes.push_back('x');
  PixelPayload payload;
  EXPECT_FALSE(decode_payload(&payload, bytes));
}

TEST(PixelCodec, DecodeRejectsOutOfRangeRuns) {
  // Hand-craft a sparse payload whose run offset exceeds the rect.
  PixelPayload payload;
  payload.dense = false;
  payload.rect = {0, 0, 4, 4};
  payload.runs.push_back({100, {Rgb8{1, 2, 3}}});
  const std::string bytes = encode_payload(payload);
  PixelPayload decoded;
  EXPECT_FALSE(decode_payload(&decoded, bytes));
}

TEST(PixelCodec, SparseIsSmallerWhenFewPixelsChange) {
  const Framebuffer fb = gradient(80, 80);
  const PixelRect rect{0, 0, 80, 80};
  PixelMask updated(80, 80);
  for (int i = 0; i < 50; ++i) updated.set(i, 40, true);
  const PixelPayload sparse = make_sparse_payload(fb, rect, updated);
  const PixelPayload dense = make_dense_payload(fb, rect);
  EXPECT_LT(encoded_size(sparse), encoded_size(dense) / 10);
}

}  // namespace
}  // namespace now
