// Crash-consistency building blocks: CRC32, the render journal's record
// framing and replay, torn-tail truncation, resume-append, digest helpers,
// atomic targa writes, and build_recovery's trust-but-verify frame loading.
#include "src/ckpt/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/ckpt/recovery.h"
#include "src/image/image_io.h"
#include "src/net/crc32.h"

namespace now {
namespace {

std::string test_dir() {
  std::string dir = ::testing::TempDir();
  if (!dir.empty() && dir.back() == '/') dir.pop_back();
  return dir;
}

std::string unique_path(const std::string& stem) {
  static int counter = 0;
  return test_dir() + "/" + stem + "_" +
         std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
         "_" + std::to_string(counter++);
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary);
  f << bytes;
}

Framebuffer gradient_frame(int w, int h, int seed) {
  Framebuffer fb(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      fb.set(x, y, Rgb8{static_cast<std::uint8_t>((x + seed) & 0xFF),
                        static_cast<std::uint8_t>((y * 3 + seed) & 0xFF),
                        static_cast<std::uint8_t>((x ^ y) & 0xFF)});
    }
  }
  return fb;
}

// -- crc32 ------------------------------------------------------------------

TEST(Crc32, KnownVectorAndIncremental) {
  // The canonical CRC-32 (IEEE 802.3) check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  // Seeding with a prefix's CRC continues the stream.
  const std::uint32_t head = crc32("12345", 5);
  EXPECT_EQ(crc32("6789", 4, head), 0xCBF43926u);
  // One flipped bit changes the digest.
  EXPECT_NE(crc32("123456788", 9), crc32("123456789", 9));
}

// -- journal write / replay -------------------------------------------------

JournalHeader small_header() {
  JournalHeader h;
  h.width = 8;
  h.height = 4;
  h.frame_count = 3;
  return h;
}

RegionCommitRecord sample_commit(int frame) {
  RegionCommitRecord rc;
  rc.task_id = 7;
  rc.rect = PixelRect{0, 0, 8, 4};
  rc.frame = frame;
  rc.digest = 0xDEADBEEFu + static_cast<std::uint32_t>(frame);
  return rc;
}

TEST(Journal, RoundTripAllRecordTypes) {
  const std::string path = unique_path("journal_roundtrip");
  JournalOptions opts;
  opts.fsync = false;
  {
    auto w = JournalWriter::create(path, small_header(), opts);
    ASSERT_NE(w, nullptr);
    w->region_commit(sample_commit(0));
    w->region_commit(sample_commit(1));
    FrameCompleteRecord fc;
    fc.frame = 0;
    fc.digest = 42;
    w->frame_complete(fc);
    CheckpointRecord cp;
    cp.completed = {true, false, false};
    CheckpointRecord::Task t;
    t.task_id = 9;
    t.rect = PixelRect{0, 2, 8, 2};
    t.first_frame = 1;
    t.frame_count = 2;
    cp.pending.push_back(t);
    CheckpointRecord::WorkerView v;
    v.worker = 2;
    v.task_id = 7;
    v.rect = PixelRect{0, 0, 8, 4};
    v.next_expected = 2;
    v.end_frame = 3;
    cp.in_flight.push_back(v);
    w->checkpoint(cp);
    EXPECT_TRUE(w->good());
    EXPECT_EQ(w->records_appended(), 5);  // header + 2 commits + fc + cp
    EXPECT_EQ(w->checkpoints_written(), 1);
  }

  const JournalReplay r = replay_journal(path);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.truncated_tail);
  EXPECT_EQ(r.records, 5);
  EXPECT_EQ(r.header.width, 8);
  EXPECT_EQ(r.header.height, 4);
  EXPECT_EQ(r.header.frame_count, 3);
  ASSERT_EQ(r.commits.size(), 2u);
  EXPECT_EQ(r.commits[1].frame, 1);
  EXPECT_EQ(r.commits[1].digest, 0xDEADBEEFu + 1);
  EXPECT_EQ(r.commits[0].rect, (PixelRect{0, 0, 8, 4}));
  ASSERT_EQ(r.frame_complete.size(), 3u);
  EXPECT_TRUE(r.frame_complete[0]);
  EXPECT_FALSE(r.frame_complete[1]);
  EXPECT_EQ(r.frame_digest.at(0), 42u);
  ASSERT_TRUE(r.last_checkpoint.has_value());
  EXPECT_EQ(r.last_checkpoint->completed,
            (std::vector<bool>{true, false, false}));
  ASSERT_EQ(r.last_checkpoint->pending.size(), 1u);
  EXPECT_EQ(r.last_checkpoint->pending[0].task_id, 9);
  ASSERT_EQ(r.last_checkpoint->in_flight.size(), 1u);
  EXPECT_EQ(r.last_checkpoint->in_flight[0].next_expected, 2);
  EXPECT_EQ(r.record_offsets.size(), 5u);
  EXPECT_EQ(r.record_offsets.back(), r.valid_bytes);
  std::remove(path.c_str());
}

TEST(Journal, CheckpointV2TrailerRoundTripsSchedulerState) {
  const std::string path = unique_path("journal_ckpt_v2");
  JournalOptions opts;
  opts.fsync = false;
  {
    auto w = JournalWriter::create(path, small_header(), opts);
    ASSERT_NE(w, nullptr);
    CheckpointRecord cp;
    cp.completed = {false, false, false};
    cp.next_task_id = 1234;
    CheckpointRecord::StragglerStat s;
    s.worker = 1;
    s.ewma = 0.75;
    s.dev = 0.125;
    s.n = 9;
    s.flagged = true;
    cp.stragglers.push_back(s);
    s.worker = 2;
    s.ewma = 1.5;
    s.flagged = false;
    cp.stragglers.push_back(s);
    w->checkpoint(cp);
    EXPECT_TRUE(w->good());
  }

  const JournalReplay r = replay_journal(path);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_TRUE(r.last_checkpoint.has_value());
  EXPECT_EQ(r.last_checkpoint->next_task_id, 1234);
  ASSERT_EQ(r.last_checkpoint->stragglers.size(), 2u);
  EXPECT_EQ(r.last_checkpoint->stragglers[0].worker, 1);
  EXPECT_DOUBLE_EQ(r.last_checkpoint->stragglers[0].ewma, 0.75);
  EXPECT_DOUBLE_EQ(r.last_checkpoint->stragglers[0].dev, 0.125);
  EXPECT_EQ(r.last_checkpoint->stragglers[0].n, 9);
  EXPECT_TRUE(r.last_checkpoint->stragglers[0].flagged);
  EXPECT_EQ(r.last_checkpoint->stragglers[1].worker, 2);
  EXPECT_FALSE(r.last_checkpoint->stragglers[1].flagged);
  std::remove(path.c_str());
}

TEST(Journal, TornTailIsIgnoredAtEveryTruncationPoint) {
  const std::string path = unique_path("journal_torn");
  JournalOptions opts;
  opts.fsync = false;
  {
    auto w = JournalWriter::create(path, small_header(), opts);
    ASSERT_NE(w, nullptr);
    for (int f = 0; f < 3; ++f) w->region_commit(sample_commit(f));
  }
  const std::string bytes = read_file(path);
  const JournalReplay full = replay_journal(path);
  ASSERT_TRUE(full.ok);
  ASSERT_EQ(full.record_offsets.size(), 4u);

  // Cutting mid-record keeps exactly the records before the cut.
  for (std::size_t len = 0; len <= bytes.size(); ++len) {
    const std::string cut_path = path + ".cut";
    write_file(cut_path, bytes.substr(0, len));
    const JournalReplay r = replay_journal(cut_path);
    std::int64_t expect_records = 0;
    for (const std::size_t off : full.record_offsets) {
      if (off <= len) ++expect_records;
    }
    if (len < full.record_offsets[0]) {
      // Not even a whole header: unusable.
      EXPECT_FALSE(r.ok) << "len=" << len;
    } else {
      ASSERT_TRUE(r.ok) << "len=" << len << ": " << r.error;
      EXPECT_EQ(r.records, expect_records) << "len=" << len;
      EXPECT_EQ(r.truncated_tail,
                len != full.record_offsets[expect_records - 1])
          << "len=" << len;
      EXPECT_EQ(r.valid_bytes, full.record_offsets[expect_records - 1]);
    }
    std::remove(cut_path.c_str());
  }
  std::remove(path.c_str());
}

TEST(Journal, CorruptMiddleRecordTruncatesReplayThere) {
  const std::string path = unique_path("journal_corrupt");
  JournalOptions opts;
  opts.fsync = false;
  {
    auto w = JournalWriter::create(path, small_header(), opts);
    for (int f = 0; f < 3; ++f) w->region_commit(sample_commit(f));
  }
  std::string bytes = read_file(path);
  const JournalReplay full = replay_journal(path);
  ASSERT_TRUE(full.ok);
  // Flip one payload byte inside the second commit record.
  bytes[full.record_offsets[1] + 10] ^= 0x01;
  write_file(path, bytes);
  const JournalReplay r = replay_journal(path);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.commits.size(), 1u);
  EXPECT_TRUE(r.truncated_tail);
  EXPECT_EQ(r.valid_bytes, full.record_offsets[1]);
  std::remove(path.c_str());
}

TEST(Journal, ResumeTruncatesTornTailAndAppends) {
  const std::string path = unique_path("journal_resume");
  JournalOptions opts;
  opts.fsync = false;
  {
    auto w = JournalWriter::create(path, small_header(), opts);
    w->region_commit(sample_commit(0));
    w->region_commit(sample_commit(1));
  }
  // Simulate a crash mid-append: chop the final record in half.
  const std::string bytes = read_file(path);
  const JournalReplay before = replay_journal(path);
  ASSERT_TRUE(before.ok);
  write_file(path, bytes.substr(0, before.record_offsets[2] - 5));
  const JournalReplay torn = replay_journal(path);
  ASSERT_TRUE(torn.ok);
  ASSERT_TRUE(torn.truncated_tail);
  EXPECT_EQ(torn.commits.size(), 1u);

  {
    auto w = JournalWriter::resume(path, torn.valid_bytes, opts);
    ASSERT_NE(w, nullptr);
    w->region_commit(sample_commit(2));
    EXPECT_TRUE(w->good());
  }
  const JournalReplay after = replay_journal(path);
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_FALSE(after.truncated_tail);
  ASSERT_EQ(after.commits.size(), 2u);
  EXPECT_EQ(after.commits[0].frame, 0);
  EXPECT_EQ(after.commits[1].frame, 2);  // the torn record stayed dead
  std::remove(path.c_str());
}

TEST(Journal, MissingFileReportsNotOk) {
  const JournalReplay r = replay_journal(unique_path("journal_nonexistent"));
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(Journal, DigestRectCoversExactlyTheRect) {
  const Framebuffer fb = gradient_frame(16, 8, 1);
  Framebuffer outside = fb;
  outside.set(0, 0, Rgb8{255, 255, 255});
  const PixelRect rect{8, 2, 6, 4};
  // Changing a pixel outside the rect leaves its digest alone...
  EXPECT_EQ(digest_rect(fb, rect), digest_rect(outside, rect));
  // ...changing one inside does not.
  Framebuffer inside = fb;
  inside.set(9, 3, Rgb8{255, 255, 255});
  EXPECT_NE(digest_rect(fb, rect), digest_rect(inside, rect));
  EXPECT_EQ(digest_frame(fb), digest_rect(fb, fb.full_rect()));
}

// -- atomic targa writes ----------------------------------------------------

TEST(AtomicTga, WritesReadableFileAndCleansTemp) {
  const std::string path = unique_path("atomic") + ".tga";
  const Framebuffer fb = gradient_frame(20, 10, 3);
  ASSERT_TRUE(write_tga_atomic(fb, path));
  Framebuffer back;
  ASSERT_TRUE(read_tga(&back, path));
  EXPECT_EQ(back, fb);
  // The rename source must be gone.
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
  // Same bytes as the plain writer: atomicity changes durability, not
  // content.
  EXPECT_EQ(read_file(path), encode_tga(fb));
  // Overwrite in place.
  const Framebuffer fb2 = gradient_frame(20, 10, 9);
  ASSERT_TRUE(write_tga_atomic(fb2, path));
  ASSERT_TRUE(read_tga(&back, path));
  EXPECT_EQ(back, fb2);
  std::remove(path.c_str());
}

TEST(AtomicTga, FailsCleanlyOnUnwritableDirectory) {
  const Framebuffer fb = gradient_frame(4, 4, 0);
  EXPECT_FALSE(write_tga_atomic(fb, "/nonexistent_dir_zz/frame.tga"));
}

// -- build_recovery ---------------------------------------------------------

TEST(Recovery, RestoresVerifiedFramesAndDemotesBadOnes) {
  const std::string dir = test_dir();
  const std::string prefix =
      "rec_" + std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  const std::string journal = unique_path("recovery_journal");
  const int w = 12, h = 6, frames = 4;
  JournalOptions opts;
  opts.fsync = false;

  std::vector<Framebuffer> fbs;
  for (int f = 0; f < frames; ++f) fbs.push_back(gradient_frame(w, h, f));
  {
    JournalHeader header;
    header.width = w;
    header.height = h;
    header.frame_count = frames;
    auto jw = JournalWriter::create(journal, header, opts);
    ASSERT_NE(jw, nullptr);
    // Frames 0, 1, 2 complete per the journal; frame 3 never finished.
    for (int f = 0; f < 3; ++f) {
      ASSERT_TRUE(
          write_tga_atomic(fbs[f], frame_file_path(dir, prefix, f)));
      FrameCompleteRecord fc;
      fc.frame = f;
      fc.digest = digest_frame(fbs[f]);
      jw->frame_complete(fc);
    }
  }
  // Frame 1's file is altered after the fact; frame 2's file vanishes.
  {
    Framebuffer tampered = fbs[1];
    tampered.set(0, 0, Rgb8{1, 2, 3});
    ASSERT_TRUE(write_tga(tampered, frame_file_path(dir, prefix, 1)));
  }
  std::remove(frame_file_path(dir, prefix, 2).c_str());

  const RecoveryState rec =
      build_recovery(journal, dir, prefix, w, h, frames);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(rec.frames_restored, 1);
  EXPECT_EQ(rec.frames_demoted, 2);
  EXPECT_EQ(rec.frames_to_render, 3);
  ASSERT_EQ(rec.frames.size(), static_cast<std::size_t>(frames));
  ASSERT_TRUE(rec.frames[0].has_value());
  EXPECT_EQ(*rec.frames[0], fbs[0]);
  EXPECT_FALSE(rec.frames[1].has_value());
  EXPECT_FALSE(rec.frames[2].has_value());
  EXPECT_FALSE(rec.frames[3].has_value());

  // A journal from a different animation is rejected.
  const RecoveryState mismatch =
      build_recovery(journal, dir, prefix, w + 1, h, frames);
  EXPECT_FALSE(mismatch.ok);

  std::remove(journal.c_str());
  std::remove(frame_file_path(dir, prefix, 0).c_str());
  std::remove(frame_file_path(dir, prefix, 1).c_str());
}

}  // namespace
}  // namespace now
