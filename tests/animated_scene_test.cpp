#include "src/scene/animated_scene.h"

#include <gtest/gtest.h>

#include "src/geom/sphere.h"

namespace now {
namespace {

AnimatedScene moving_sphere_scene() {
  AnimatedScene scene;
  scene.set_frames(10, 10.0);  // 1 frame = 0.1 s
  const int mat = scene.add_material(Material::matte(Color::white()));
  Spline path(InterpMode::kLinear);
  path.add_key(0.0, {0, 0, 0});
  path.add_key(0.9, {9, 0, 0});  // 1 unit per frame
  scene.add_object("mover", std::make_unique<Sphere>(Vec3{0, 0, 0}, 0.5), mat,
                   std::make_unique<KeyframeAnimator>(std::move(path)));
  scene.add_object("static", std::make_unique<Sphere>(Vec3{0, 5, 0}, 0.5),
                   mat);
  scene.add_light(Light::point({0, 10, 0}, Color::white(), 1.0));
  return scene;
}

TEST(AnimatedScene, FrameTime) {
  const AnimatedScene scene = moving_sphere_scene();
  EXPECT_DOUBLE_EQ(scene.frame_time(0), 0.0);
  EXPECT_DOUBLE_EQ(scene.frame_time(5), 0.5);
}

TEST(AnimatedScene, ObjectTransforms) {
  const AnimatedScene scene = moving_sphere_scene();
  EXPECT_EQ(scene.object_transform(0, 0).translation, Vec3(0, 0, 0));
  EXPECT_EQ(scene.object_transform(0, 3).translation, Vec3(3, 0, 0));
  EXPECT_EQ(scene.object_transform(1, 3), Transform::identity());
}

TEST(AnimatedScene, ChangedObjects) {
  const AnimatedScene scene = moving_sphere_scene();
  EXPECT_TRUE(scene.object_changed(0, 0, 1));
  EXPECT_FALSE(scene.object_changed(1, 0, 1));
  const std::vector<int> changed = scene.changed_objects(2, 3);
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0], 0);
  // Past the end of the spline the mover stops.
  EXPECT_TRUE(scene.changed_objects(9, 9).empty());
}

TEST(AnimatedScene, WorldInstantiation) {
  const AnimatedScene scene = moving_sphere_scene();
  const World w3 = scene.world_at(3);
  EXPECT_EQ(w3.object_count(), 2);
  EXPECT_EQ(w3.lights().size(), 1u);
  const auto* mover = dynamic_cast<const Sphere*>(w3.object(0).primitive.get());
  ASSERT_NE(mover, nullptr);
  EXPECT_EQ(mover->center(), Vec3(3, 0, 0));
  // Object ids are stable scene indices.
  EXPECT_EQ(w3.object(0).object_id, 0);
  EXPECT_EQ(w3.object(1).object_id, 1);
}

TEST(AnimatedScene, CloneIsDeep) {
  const AnimatedScene scene = moving_sphere_scene();
  const AnimatedScene copy = scene.clone();
  EXPECT_EQ(copy.object_count(), scene.object_count());
  EXPECT_EQ(copy.object_transform(0, 4).translation,
            scene.object_transform(0, 4).translation);
  EXPECT_NE(copy.object(0).local.get(), scene.object(0).local.get());
}

TEST(AnimatedScene, CameraCuts) {
  AnimatedScene scene = moving_sphere_scene();
  const Camera second({5, 5, 5}, {0, 0, 0}, {0, 1, 0}, 50.0, 1.0);
  scene.add_camera_cut(4, second);
  EXPECT_FALSE(scene.camera_changed(2, 3));
  EXPECT_TRUE(scene.camera_changed(3, 4));
  EXPECT_FALSE(scene.camera_changed(4, 9));
  EXPECT_EQ(scene.camera_at(7), second);
}

TEST(AnimatedScene, SplitShotsSingleCamera) {
  const AnimatedScene scene = moving_sphere_scene();
  const auto shots = scene.split_shots();
  ASSERT_EQ(shots.size(), 1u);
  EXPECT_EQ(shots[0].first_frame, 0);
  EXPECT_EQ(shots[0].frame_count, 10);
}

TEST(AnimatedScene, SplitShotsAtCuts) {
  AnimatedScene scene = moving_sphere_scene();
  scene.add_camera_cut(3, Camera({5, 5, 5}, {0, 0, 0}, {0, 1, 0}, 50.0, 1.0));
  scene.add_camera_cut(7, Camera({-5, 5, 5}, {0, 0, 0}, {0, 1, 0}, 50.0, 1.0));
  const auto shots = scene.split_shots();
  ASSERT_EQ(shots.size(), 3u);
  EXPECT_EQ(shots[0].first_frame, 0);
  EXPECT_EQ(shots[0].frame_count, 3);
  EXPECT_EQ(shots[1].first_frame, 3);
  EXPECT_EQ(shots[1].frame_count, 4);
  EXPECT_EQ(shots[2].first_frame, 7);
  EXPECT_EQ(shots[2].frame_count, 3);
}

TEST(AnimatedScene, AnimatedLightMovesAndReportsChange) {
  AnimatedScene scene;
  scene.set_frames(6, 10.0);
  Spline path(InterpMode::kLinear);
  path.add_key(0.0, {0, 0, 0});
  path.add_key(0.5, {5, 0, 0});
  scene.add_light(Light::point({0, 4, 0}, Color::white(), 1.0),
                  std::make_unique<KeyframeAnimator>(std::move(path)));
  scene.add_light(Light::point({9, 9, 9}, Color::white(), 1.0));

  EXPECT_EQ(scene.light_at(0, 0).position, Vec3(0, 4, 0));
  EXPECT_EQ(scene.light_at(0, 5).position, Vec3(5, 4, 0));
  EXPECT_EQ(scene.light_at(1, 5).position, Vec3(9, 9, 9));
  EXPECT_TRUE(scene.lights_changed(0, 1));
  EXPECT_FALSE(scene.lights_changed(5, 5));
  // Clone preserves the light track.
  const AnimatedScene copy = scene.clone();
  EXPECT_EQ(copy.light_at(0, 3).position, scene.light_at(0, 3).position);
}

TEST(AnimatedScene, StaticLightsNeverReportChange) {
  const AnimatedScene scene = moving_sphere_scene();
  EXPECT_FALSE(scene.lights_changed(0, scene.frame_count() - 1));
}

TEST(Animators, PivotRotationIdentityAtZeroAngle) {
  const PivotRotationAnimator anim({1, 2, 3}, {0, 0, 1},
                                   [](double t) { return t < 1.0 ? 0.0 : 0.5; });
  EXPECT_EQ(anim.at(0.5), Transform::identity());
  EXPECT_NE(anim.at(2.0), Transform::identity());
}

TEST(Animators, OrbitPeriodicity) {
  const OrbitAnimator anim({0, 0, 0}, {0, 1, 0}, 2.0);
  const Vec3 p{1, 0, 0};
  const Vec3 at0 = anim.at(0.0).apply_point(p);
  const Vec3 at2 = anim.at(2.0).apply_point(p);
  EXPECT_NEAR((at0 - at2).length(), 0.0, 1e-12);
  const Vec3 at1 = anim.at(1.0).apply_point(p);  // half orbit: opposite side
  EXPECT_NEAR((at1 + p).length(), 0.0, 1e-12);
}

TEST(Animators, CloneBehavesIdentically) {
  Spline path(InterpMode::kLinear);
  path.add_key(0.0, {0, 0, 0});
  path.add_key(1.0, {1, 2, 3});
  const KeyframeAnimator anim(path);
  const auto copy = anim.clone();
  for (double t = 0.0; t <= 1.0; t += 0.13) {
    EXPECT_EQ(anim.at(t).translation, copy->at(t).translation);
  }
}

}  // namespace
}  // namespace now
