// nowmp: the PVM-style blocking message-passing facade.
#include "src/net/nowmp.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace now {
namespace {

constexpr int kTagWork = 10;
constexpr int kTagResult = 11;
constexpr int kTagOther = 12;

TEST(Nowmp, MasterSlaveScatterGather) {
  std::atomic<std::int64_t> total{0};
  nowmp::run(
      5,
      [&](nowmp::Task& t) {
        // Scatter one integer per slave.
        for (int w = 1; w < t.ntasks(); ++w) {
          t.init_send();
          t.pack_i32(w * 10);
          t.send(w, kTagWork);
        }
        // Gather doubled results from any source.
        std::int64_t sum = 0;
        for (int w = 1; w < t.ntasks(); ++w) {
          t.recv(-1, kTagResult);
          sum += t.unpack_i64();
        }
        total = sum;
      },
      [](nowmp::Task& t) {
        t.recv(0, kTagWork);
        const std::int32_t v = t.unpack_i32();
        t.init_send();
        t.pack_i64(2LL * v);
        t.send(0, kTagResult);
      });
  EXPECT_EQ(total.load(), 2 * (10 + 20 + 30 + 40));
}

TEST(Nowmp, TypedPackUnpackRoundTrip) {
  nowmp::run(
      2,
      [](nowmp::Task& t) {
        t.init_send();
        t.pack_i32(-42);
        t.pack_i64(-9'000'000'000LL);
        t.pack_u64(0xFEEDFACECAFEBEEFULL);
        t.pack_f64(2.718281828459045);
        t.pack_str("hello pvm");
        t.send(1, kTagWork);
        t.recv(1, kTagResult);
        EXPECT_EQ(t.unpack_str(), "ack");
      },
      [](nowmp::Task& t) {
        t.recv(0, kTagWork);
        EXPECT_EQ(t.unpack_i32(), -42);
        EXPECT_EQ(t.unpack_i64(), -9'000'000'000LL);
        EXPECT_EQ(t.unpack_u64(), 0xFEEDFACECAFEBEEFULL);
        EXPECT_DOUBLE_EQ(t.unpack_f64(), 2.718281828459045);
        EXPECT_EQ(t.unpack_str(), "hello pvm");
        t.init_send();
        t.pack_str("ack");
        t.send(0, kTagResult);
      });
}

TEST(Nowmp, SelectiveReceiveByTag) {
  nowmp::run(
      2,
      [](nowmp::Task& t) {
        // Send the "other" message first; the slave asks for kTagWork first.
        t.init_send();
        t.pack_i32(2);
        t.send(1, kTagOther);
        t.init_send();
        t.pack_i32(1);
        t.send(1, kTagWork);
        t.recv(1, kTagResult);
        EXPECT_EQ(t.unpack_i32(), 12);  // work then other
      },
      [](nowmp::Task& t) {
        t.recv(0, kTagWork);
        const int first = t.unpack_i32();
        EXPECT_EQ(t.recv_tag(), kTagWork);
        EXPECT_EQ(t.recv_source(), 0);
        t.recv(0, kTagOther);
        const int second = t.unpack_i32();
        t.init_send();
        t.pack_i32(first * 10 + second);
        t.send(0, kTagResult);
      });
}

TEST(Nowmp, ProbeAndTryRecv) {
  nowmp::run(
      2,
      [](nowmp::Task& t) {
        t.init_send();
        t.pack_i32(7);
        t.send(1, kTagWork);
        t.recv(1, kTagResult);
      },
      [](nowmp::Task& t) {
        // Nothing with kTagOther ever arrives.
        EXPECT_FALSE(t.try_recv(-1, kTagOther));
        // Spin until the work message is visible via probe.
        while (!t.probe(0, kTagWork)) {
        }
        EXPECT_TRUE(t.probe(-1, -1));
        ASSERT_TRUE(t.try_recv(0, kTagWork));
        EXPECT_EQ(t.unpack_i32(), 7);
        // Probe no longer matches: the message was consumed.
        EXPECT_FALSE(t.probe(0, kTagWork));
        t.init_send();
        t.send(0, kTagResult);
      });
}

TEST(Nowmp, UnpackPastEndThrows) {
  nowmp::run(
      2,
      [](nowmp::Task& t) {
        t.init_send();
        t.pack_i32(1);
        t.send(1, kTagWork);
        t.recv(1, kTagResult);
      },
      [](nowmp::Task& t) {
        t.recv(0, kTagWork);
        EXPECT_EQ(t.unpack_i32(), 1);
        EXPECT_THROW(t.unpack_i32(), nowmp::UnpackError);
        t.init_send();
        t.send(0, kTagResult);
      });
}

TEST(Nowmp, SlaveToSlaveAllowed) {
  // Unlike the render farm's star topology, nowmp is a general library:
  // slaves may talk to each other.
  nowmp::run({
      [](nowmp::Task& t) {  // task 0 waits for the ring to finish
        t.recv(2, kTagResult);
        EXPECT_EQ(t.unpack_i32(), 3);
      },
      [](nowmp::Task& t) {  // task 1 starts a ring 1 -> 2 -> 0
        t.init_send();
        t.pack_i32(2);
        t.send(2, kTagWork);
      },
      [](nowmp::Task& t) {  // task 2 forwards
        t.recv(1, kTagWork);
        const int v = t.unpack_i32();
        t.init_send();
        t.pack_i32(v + 1);
        t.send(0, kTagResult);
      },
  });
}

TEST(Nowmp, ManyTasksStress) {
  constexpr int kTasks = 12;
  std::atomic<std::int64_t> total{0};
  nowmp::run(
      kTasks,
      [&](nowmp::Task& t) {
        std::int64_t sum = 0;
        for (int i = 1; i < kTasks; ++i) {
          t.recv(-1, kTagResult);
          sum += t.unpack_i64();
        }
        total = sum;
      },
      [](nowmp::Task& t) {
        std::int64_t local = 0;
        for (int i = 0; i < 1000; ++i) local += t.mytid();
        t.init_send();
        t.pack_i64(local);
        t.send(0, kTagResult);
      });
  std::int64_t expected = 0;
  for (int w = 1; w < kTasks; ++w) expected += 1000LL * w;
  EXPECT_EQ(total.load(), expected);
}

}  // namespace
}  // namespace now
