// Runtime backends: the same ping-pong and fan-in actors must behave
// identically on ThreadRuntime, TcpRuntime and SimRuntime; SimRuntime
// additionally produces exact virtual timings.
#include <gtest/gtest.h>

#include <atomic>

#include "src/net/tcp_runtime.h"
#include "src/net/thread_runtime.h"
#include "src/sim/sim_runtime.h"

namespace now {
namespace {

constexpr int kPing = 1;
constexpr int kPong = 2;

/// Rank 0: sends N pings to each peer, stops after all pongs return.
class PingMaster final : public Actor {
 public:
  explicit PingMaster(int rounds) : rounds_(rounds) {}

  void on_start(Context& ctx) override {
    for (int w = 1; w < ctx.world_size(); ++w) {
      ctx.send(w, kPing, "ping-0");
    }
  }

  void on_message(Context& ctx, const Message& msg) override {
    ASSERT_EQ(msg.tag, kPong);
    ++pongs_;
    const int total_expected = rounds_ * (ctx.world_size() - 1);
    if (round_of(msg.payload) + 1 < rounds_) {
      ctx.send(msg.source, kPing,
               "ping-" + std::to_string(round_of(msg.payload) + 1));
    }
    if (pongs_ == total_expected) ctx.stop();
  }

  int pongs() const { return pongs_; }

 private:
  static int round_of(const std::string& payload) {
    return std::stoi(payload.substr(payload.find('-') + 1));
  }
  int rounds_;
  int pongs_ = 0;
};

class PongWorker final : public Actor {
 public:
  void on_start(Context&) override {}
  void on_message(Context& ctx, const Message& msg) override {
    ASSERT_EQ(msg.tag, kPing);
    ++pings_;
    ctx.send(0, kPong, "pong" + msg.payload.substr(4));
  }
  int pings() const { return pings_; }

 private:
  int pings_ = 0;
};

template <typename RuntimeT>
void run_ping_pong(RuntimeT& runtime, int workers, int rounds) {
  PingMaster master(rounds);
  std::vector<PongWorker> pongs(static_cast<std::size_t>(workers));
  std::vector<Actor*> actors{&master};
  for (auto& p : pongs) actors.push_back(&p);
  const RuntimeStats stats = runtime.run(actors);
  EXPECT_EQ(master.pongs(), workers * rounds);
  for (const auto& p : pongs) EXPECT_EQ(p.pings(), rounds);
  // Each ping and each pong crosses ranks.
  EXPECT_EQ(stats.messages, 2 * workers * rounds);
}

TEST(ThreadRuntime, PingPong) {
  ThreadRuntime runtime;
  run_ping_pong(runtime, 3, 5);
}

TEST(TcpRuntime, PingPong) {
  TcpRuntime runtime;
  run_ping_pong(runtime, 3, 5);
}

TEST(SimRuntime, PingPong) {
  SimConfig config;
  config.speeds = {1.0, 1.0, 1.0, 1.0};
  SimRuntime runtime(config);
  run_ping_pong(runtime, 3, 5);
}

TEST(ThreadRuntime, ManyWorkers) {
  ThreadRuntime runtime;
  run_ping_pong(runtime, 16, 3);
}

TEST(TcpRuntime, LargePayloadSurvivesFraming) {
  class BigMaster final : public Actor {
   public:
    std::string expected;
    bool matched = false;
    void on_start(Context& ctx) override {
      expected.assign(1 << 20, 'x');
      for (std::size_t i = 0; i < expected.size(); i += 37) {
        expected[i] = static_cast<char>('a' + (i % 26));
      }
      ctx.send(1, kPing, expected);
    }
    void on_message(Context& ctx, const Message& msg) override {
      matched = (msg.payload == expected);
      ctx.stop();
    }
  };
  class Echo final : public Actor {
   public:
    void on_start(Context&) override {}
    void on_message(Context& ctx, const Message& msg) override {
      ctx.send(0, kPong, msg.payload);
    }
  };
  BigMaster master;
  Echo echo;
  TcpRuntime runtime;
  runtime.run({&master, &echo});
  EXPECT_TRUE(master.matched);
}

// -- SimRuntime virtual-time semantics --------------------------------------

class ChargingWorker final : public Actor {
 public:
  explicit ChargingWorker(double cost) : cost_(cost) {}
  void on_start(Context&) override {}
  void on_message(Context& ctx, const Message&) override {
    ctx.charge(cost_);
    finish_time_ = ctx.now();
    ctx.send(0, kPong, "");
  }
  double finish_time() const { return finish_time_; }

 private:
  double cost_;
  double finish_time_ = 0.0;
};

class OneShotMaster final : public Actor {
 public:
  void on_start(Context& ctx) override {
    for (int w = 1; w < ctx.world_size(); ++w) ctx.send(w, kPing, "");
  }
  void on_message(Context& ctx, const Message&) override {
    if (++replies_ == ctx.world_size() - 1) ctx.stop();
  }

 private:
  int replies_ = 0;
};

TEST(SimRuntime, SpeedFactorsScaleCharges) {
  OneShotMaster master;
  ChargingWorker fast(10.0);
  ChargingWorker slow(10.0);
  SimConfig config;
  config.speeds = {1.0, 2.0, 0.5};  // worker1 2x fast, worker2 2x slow
  config.ethernet.latency_seconds = 0.0;
  config.ethernet.per_message_overhead_bytes = 0;
  SimRuntime runtime(config);
  const SimRuntimeStats stats = runtime.run_sim({&master, &fast, &slow});
  EXPECT_NEAR(fast.finish_time(), 5.0, 1e-9);
  EXPECT_NEAR(slow.finish_time(), 20.0, 1e-9);
  EXPECT_NEAR(stats.rank_busy_seconds[1], 5.0, 1e-9);
  EXPECT_NEAR(stats.rank_busy_seconds[2], 20.0, 1e-9);
  EXPECT_GE(stats.elapsed_seconds, 20.0);
}

TEST(SimRuntime, RejectsBadConfig) {
  OneShotMaster master;
  ChargingWorker w(1.0);
  {
    SimConfig config;
    config.speeds = {1.0};  // wrong count
    SimRuntime runtime(config);
    std::vector<Actor*> actors{&master, &w};
    EXPECT_THROW(runtime.run(actors), std::invalid_argument);
  }
  {
    SimConfig config;
    config.speeds = {1.0, 0.0};  // zero speed
    SimRuntime runtime(config);
    std::vector<Actor*> actors{&master, &w};
    EXPECT_THROW(runtime.run(actors), std::invalid_argument);
  }
}

TEST(SimRuntime, MessagesArriveInTimestampOrder) {
  // Worker 1 charges heavily before sending; worker 2 sends immediately.
  // The master must see worker 2's message first (lower virtual time).
  class Collector final : public Actor {
   public:
    std::vector<int> order;
    void on_start(Context& ctx) override {
      ctx.send(1, kPing, "");
      ctx.send(2, kPing, "");
    }
    void on_message(Context& ctx, const Message& msg) override {
      order.push_back(msg.source);
      if (order.size() == 2) ctx.stop();
    }
  };
  Collector master;
  ChargingWorker heavy(100.0);
  ChargingWorker light(1.0);
  SimConfig config;
  config.speeds = {1.0, 1.0, 1.0};
  SimRuntime runtime(config);
  runtime.run({&master, &heavy, &light});
  ASSERT_EQ(master.order.size(), 2u);
  EXPECT_EQ(master.order[0], 2);
  EXPECT_EQ(master.order[1], 1);
}

TEST(SimRuntime, EthernetDelaysDeliveries) {
  class TimedMaster final : public Actor {
   public:
    double receive_time = -1.0;
    void on_start(Context& ctx) override { ctx.send(1, kPing, ""); }
    void on_message(Context& ctx, const Message&) override {
      receive_time = ctx.now();
      ctx.stop();
    }
  };
  class InstantEcho final : public Actor {
   public:
    void on_start(Context&) override {}
    void on_message(Context& ctx, const Message&) override {
      ctx.send(0, kPong, std::string(1000, 'x'));
    }
  };
  TimedMaster master;
  InstantEcho echo;
  SimConfig config;
  config.speeds = {1.0, 1.0};
  config.ethernet.bandwidth_bytes_per_sec = 1000.0;
  config.ethernet.latency_seconds = 0.25;
  config.ethernet.per_message_overhead_bytes = 0;
  SimRuntime runtime(config);
  runtime.run({&master, &echo});
  // ping: 0 bytes -> 0.25s. pong: 1000 B / 1000 Bps + 0.25 = 1.25s later.
  EXPECT_NEAR(master.receive_time, 0.25 + 1.25, 1e-9);
}

TEST(SimRuntime, DeterministicAcrossRuns) {
  for (int i = 0; i < 2; ++i) {
    OneShotMaster master;
    ChargingWorker a(3.0), b(7.0);
    SimConfig config;
    config.speeds = {1.0, 1.0, 1.0};
    SimRuntime runtime(config);
    const SimRuntimeStats stats = runtime.run_sim({&master, &a, &b});
    static double first_elapsed = 0.0;
    if (i == 0) {
      first_elapsed = stats.elapsed_seconds;
    } else {
      EXPECT_EQ(stats.elapsed_seconds, first_elapsed);
    }
  }
}

}  // namespace
}  // namespace now
