// Primitive-vs-box overlap predicates: the change detector's correctness
// rests on these being conservative (no false negatives), so each predicate
// is validated against a sampling oracle.
#include "src/geom/overlap.h"

#include <gtest/gtest.h>

#include "src/geom/box.h"
#include "src/geom/cylinder.h"
#include "src/geom/plane.h"
#include "src/geom/sphere.h"
#include "src/geom/triangle.h"
#include "src/math/rng.h"

namespace now {
namespace {

TEST(PointBoxDistance, InsideIsZero) {
  const Aabb box{{0, 0, 0}, {1, 1, 1}};
  EXPECT_DOUBLE_EQ(point_box_distance_squared({0.5, 0.5, 0.5}, box), 0.0);
  EXPECT_DOUBLE_EQ(point_box_distance_squared({0, 0, 0}, box), 0.0);
}

TEST(PointBoxDistance, OutsideAxisAndCorner) {
  const Aabb box{{0, 0, 0}, {1, 1, 1}};
  EXPECT_DOUBLE_EQ(point_box_distance_squared({2, 0.5, 0.5}, box), 1.0);
  EXPECT_DOUBLE_EQ(point_box_distance_squared({2, 2, 2}, box), 3.0);
}

TEST(SegmentBoxDistance, IntersectingSegmentIsZero) {
  const Aabb box{{0, 0, 0}, {1, 1, 1}};
  EXPECT_NEAR(segment_box_distance({-1, 0.5, 0.5}, {2, 0.5, 0.5}, box), 0.0,
              1e-9);
}

TEST(SegmentBoxDistance, ParallelSegment) {
  const Aabb box{{0, 0, 0}, {1, 1, 1}};
  EXPECT_NEAR(segment_box_distance({-1, 3, 0.5}, {2, 3, 0.5}, box), 2.0, 1e-6);
}

TEST(SegmentBoxDistance, EndpointNearest) {
  const Aabb box{{0, 0, 0}, {1, 1, 1}};
  // Segment pointing away: nearest point is the endpoint at (2, 0.5, 0.5).
  EXPECT_NEAR(segment_box_distance({2, 0.5, 0.5}, {5, 0.5, 0.5}, box), 1.0,
              1e-6);
}

TEST(PlaneOverlap, Basics) {
  const Aabb box{{0, 0, 0}, {1, 1, 1}};
  EXPECT_TRUE(plane_overlaps_box({0, 1, 0}, 0.5, box));
  EXPECT_TRUE(plane_overlaps_box({0, 1, 0}, 0.0, box));   // touching face
  EXPECT_FALSE(plane_overlaps_box({0, 1, 0}, 1.5, box));
  EXPECT_FALSE(plane_overlaps_box({0, 1, 0}, -0.5, box));
  // Diagonal plane through the corner region.
  const Vec3 n = Vec3(1, 1, 1).normalized();
  EXPECT_TRUE(plane_overlaps_box(n, 0.5, box));
  EXPECT_FALSE(plane_overlaps_box(n, 10.0, box));
}

TEST(TriangleOverlap, ContainedAndDisjoint) {
  const Aabb box{{0, 0, 0}, {2, 2, 2}};
  EXPECT_TRUE(triangle_overlaps_box({0.5, 0.5, 1}, {1.5, 0.5, 1},
                                    {1, 1.5, 1}, box));
  EXPECT_FALSE(triangle_overlaps_box({5, 5, 5}, {6, 5, 5}, {5, 6, 5}, box));
}

TEST(TriangleOverlap, PiercingTriangle) {
  // Large triangle whose plane slices the box but whose vertices are all
  // outside: must still report overlap.
  const Aabb box{{0, 0, 0}, {1, 1, 1}};
  EXPECT_TRUE(triangle_overlaps_box({-5, 0.5, -5}, {5, 0.5, -5},
                                    {0, 0.5, 10}, box));
}

TEST(TriangleOverlap, NearMissAboveFace) {
  const Aabb box{{0, 0, 0}, {1, 1, 1}};
  EXPECT_FALSE(triangle_overlaps_box({-5, 1.01, -5}, {5, 1.01, -5},
                                     {0, 1.01, 10}, box));
}

TEST(OrientedBoxOverlap, AxisAlignedCases) {
  const Aabb box{{0, 0, 0}, {2, 2, 2}};
  EXPECT_TRUE(oriented_box_overlaps_box({1, 1, 1}, Mat3::identity(),
                                        {0.5, 0.5, 0.5}, box));
  EXPECT_FALSE(oriented_box_overlaps_box({5, 1, 1}, Mat3::identity(),
                                         {0.5, 0.5, 0.5}, box));
  // Touching exactly at a face.
  EXPECT_TRUE(oriented_box_overlaps_box({2.5, 1, 1}, Mat3::identity(),
                                        {0.5, 0.5, 0.5}, box));
}

TEST(OrientedBoxOverlap, RotationMatters) {
  const Aabb box{{0, 0, 0}, {1, 1, 1}};
  // A slab rotated 45° about z reaches down into the box corner that the
  // axis-aligned version misses (its long axis points at the corner).
  const Vec3 center{1.7, 1.7, 0.5};
  const Vec3 half{1.0, 0.1, 0.4};
  EXPECT_FALSE(oriented_box_overlaps_box(center, Mat3::identity(), half, box));
  EXPECT_TRUE(oriented_box_overlaps_box(center, Mat3::rotation_z(kPi / 4),
                                        half, box));
}

// Sampling oracle: predicates must never report "no overlap" when random
// point sampling finds a shared point (conservativeness).
TEST(OverlapOracle, SphereNeverFalseNegative) {
  Rng rng(31);
  for (int iter = 0; iter < 300; ++iter) {
    const Sphere s(rng.point_in_box({-2, -2, -2}, {2, 2, 2}),
                   rng.uniform(0.2, 1.0));
    const Vec3 lo = rng.point_in_box({-2, -2, -2}, {1, 1, 1});
    const Aabb box{lo, lo + rng.point_in_box({0.2, 0.2, 0.2}, {2, 2, 2})};
    if (s.overlaps_box(box)) continue;  // claims overlap: fine either way
    // Claims disjoint: no sampled box point may be inside the sphere.
    for (int i = 0; i < 200; ++i) {
      const Vec3 p = rng.point_in_box(box.lo, box.hi);
      ASSERT_GT((p - s.center()).length(), s.radius())
          << "false negative at iter " << iter;
    }
  }
}

TEST(OverlapOracle, CylinderNeverFalseNegative) {
  Rng rng(32);
  for (int iter = 0; iter < 200; ++iter) {
    const Vec3 p0 = rng.point_in_box({-2, -2, -2}, {2, 2, 2});
    const Cylinder c(p0, p0 + rng.unit_vector() * rng.uniform(0.5, 2.0),
                     rng.uniform(0.1, 0.6));
    const Vec3 lo = rng.point_in_box({-2, -2, -2}, {1, 1, 1});
    const Aabb box{lo, lo + rng.point_in_box({0.2, 0.2, 0.2}, {2, 2, 2})};
    if (c.overlaps_box(box)) continue;
    for (int i = 0; i < 200; ++i) {
      const Vec3 p = rng.point_in_box(box.lo, box.hi);
      Hit h;
      // Point-in-cylinder test via projection.
      const Vec3 axis = c.p1() - c.p0();
      const double len = axis.length();
      const Vec3 a = axis / len;
      const double t = dot(p - c.p0(), a);
      const bool inside = t >= 0 && t <= len &&
                          (p - (c.p0() + a * t)).length() <= c.radius();
      ASSERT_FALSE(inside) << "false negative at iter " << iter;
    }
  }
}

TEST(OverlapOracle, OrientedBoxNeverFalseNegative) {
  Rng rng(33);
  for (int iter = 0; iter < 200; ++iter) {
    const Box obb(rng.point_in_box({-2, -2, -2}, {2, 2, 2}),
                  rng.point_in_box({0.1, 0.1, 0.1}, {1, 1, 1}),
                  Mat3::axis_angle(rng.unit_vector(), rng.uniform(0, kTwoPi)));
    const Vec3 lo = rng.point_in_box({-2, -2, -2}, {1, 1, 1});
    const Aabb box{lo, lo + rng.point_in_box({0.2, 0.2, 0.2}, {2, 2, 2})};
    if (obb.overlaps_box(box)) continue;
    const Mat3 inv = obb.rotation().transposed();
    for (int i = 0; i < 200; ++i) {
      const Vec3 p = rng.point_in_box(box.lo, box.hi);
      const Vec3 local = inv * (p - obb.center());
      const bool inside = std::fabs(local.x) <= obb.half_extents().x &&
                          std::fabs(local.y) <= obb.half_extents().y &&
                          std::fabs(local.z) <= obb.half_extents().z;
      ASSERT_FALSE(inside) << "false negative at iter " << iter;
    }
  }
}

}  // namespace
}  // namespace now
