#include "src/scene/builtin_scenes.h"

#include <gtest/gtest.h>

#include "src/core/coherent_renderer.h"
#include "src/geom/cylinder.h"
#include "src/geom/plane.h"
#include "src/geom/sphere.h"
#include "src/trace/render.h"

namespace now {
namespace {

TEST(NewtonCradle, MatchesPaperInventory) {
  // "consisting of one plane, five spheres, and sixteen cylinders"
  const AnimatedScene scene = newton_cradle_scene();
  int planes = 0, spheres = 0, cylinders = 0;
  for (int i = 0; i < scene.object_count(); ++i) {
    switch (scene.object(i).local->type()) {
      case ShapeType::kPlane: ++planes; break;
      case ShapeType::kSphere: ++spheres; break;
      case ShapeType::kCylinder: ++cylinders; break;
      default: FAIL() << "unexpected primitive in cradle";
    }
  }
  EXPECT_EQ(planes, 1);
  EXPECT_EQ(spheres, 5);
  EXPECT_EQ(cylinders, 16);
  EXPECT_EQ(scene.frame_count(), 45);
  EXPECT_EQ(scene.width() * scene.height(), 76800);  // paper's pixel count
}

TEST(NewtonCradle, OnlyEndMarblesEverMove) {
  const AnimatedScene scene = newton_cradle_scene();
  std::vector<bool> moved(scene.object_count(), false);
  for (int f = 1; f < scene.frame_count(); ++f) {
    for (const int id : scene.changed_objects(f - 1, f)) moved[id] = true;
  }
  int moving_spheres = 0, moving_cylinders = 0, moving_other = 0;
  for (int i = 0; i < scene.object_count(); ++i) {
    if (!moved[i]) continue;
    switch (scene.object(i).local->type()) {
      case ShapeType::kSphere: ++moving_spheres; break;
      case ShapeType::kCylinder: ++moving_cylinders; break;
      default: ++moving_other;
    }
  }
  EXPECT_EQ(moving_spheres, 2);    // the two end marbles
  EXPECT_EQ(moving_cylinders, 4);  // their two strings each
  EXPECT_EQ(moving_other, 0);
}

TEST(NewtonCradle, StringsStayAttachedToMarbles) {
  // Each string's far endpoint must coincide with its marble's center at
  // every frame (the rigid-pivot construction).
  const AnimatedScene scene = newton_cradle_scene();
  for (int f = 0; f < scene.frame_count(); f += 5) {
    const World w = scene.world_at(f);
    // Collect marble centers.
    std::vector<Vec3> centers;
    for (const WorldObject& obj : w.objects()) {
      if (const auto* s = dynamic_cast<const Sphere*>(obj.primitive.get())) {
        centers.push_back(s->center());
      }
    }
    ASSERT_EQ(centers.size(), 5u);
    int strings = 0;
    for (const WorldObject& obj : w.objects()) {
      const auto* c = dynamic_cast<const Cylinder*>(obj.primitive.get());
      if (c == nullptr || c->radius() > 0.02) continue;  // strings are thin
      ++strings;
      double best = 1e9;
      for (const Vec3& center : centers) {
        best = std::min(best, (c->p1() - center).length());
      }
      EXPECT_LT(best, 1e-9) << "frame " << f;
    }
    EXPECT_EQ(strings, 10);
  }
}

TEST(NewtonCradle, MomentumAlternatesBetweenEndMarbles) {
  const CradleParams params;
  const AnimatedScene scene = newton_cradle_scene(params);
  // At no sampled frame do BOTH end marbles hang away from rest.
  for (int f = 0; f < scene.frame_count(); ++f) {
    const bool left_moving = scene.object_transform(7, f) != Transform::identity();
    // Find the ids of the end marbles by name instead of hardcoding.
    int left_id = -1, right_id = -1;
    for (int i = 0; i < scene.object_count(); ++i) {
      if (scene.object(i).name == "marble0") left_id = i;
      if (scene.object(i).name == "marble4") right_id = i;
    }
    ASSERT_GE(left_id, 0);
    ASSERT_GE(right_id, 0);
    const bool left = scene.object_transform(left_id, f) != Transform::identity();
    const bool right = scene.object_transform(right_id, f) != Transform::identity();
    EXPECT_FALSE(left && right) << "frame " << f;
    (void)left_moving;
  }
}

TEST(BouncingBall, StaysInsideRoomAboveFloor) {
  const BounceParams params;
  const AnimatedScene scene = bouncing_ball_scene(params);
  int ball_id = -1;
  for (int i = 0; i < scene.object_count(); ++i) {
    if (scene.object(i).name == "ball") ball_id = i;
  }
  ASSERT_GE(ball_id, 0);
  for (int f = 0; f < scene.frame_count(); ++f) {
    const Vec3 pos = scene.object_transform(ball_id, f).translation;
    EXPECT_GE(pos.y, 0.449) << "frame " << f;  // radius 0.45, tiny tolerance
    EXPECT_GE(pos.x, -2.5);
    EXPECT_LE(pos.x, 2.5);
    EXPECT_GE(pos.z, -2.5);
  }
}

TEST(BouncingBall, BallActuallyMovesEveryFrame) {
  const AnimatedScene scene = bouncing_ball_scene();
  for (int f = 1; f < scene.frame_count(); ++f) {
    EXPECT_FALSE(scene.changed_objects(f - 1, f).empty()) << "frame " << f;
  }
}

TEST(BouncingBall, RendersGlassWithRefraction) {
  BounceParams params;
  params.frames = 1;
  params.width = 64;
  params.height = 48;
  const AnimatedScene scene = bouncing_ball_scene(params);
  TraceStats stats;
  render_world(scene.world_at(0), 64, 48, TraceOptions{}, &stats);
  EXPECT_GT(stats.refraction_rays, 0u);
  EXPECT_GT(stats.shadow_rays, 0u);
}

TEST(OrbitScene, RequestedSphereCount) {
  const AnimatedScene scene = orbit_scene(7, 5);
  int spheres = 0;
  for (int i = 0; i < scene.object_count(); ++i) {
    if (scene.object(i).local->type() == ShapeType::kSphere) ++spheres;
  }
  EXPECT_EQ(spheres, 7);
  EXPECT_EQ(scene.frame_count(), 5);
}

TEST(RandomScene, DeterministicPerSeed) {
  Rng a(77), b(77);
  const AnimatedScene sa = random_scene(&a, 6, 3);
  const AnimatedScene sb = random_scene(&b, 6, 3);
  ASSERT_EQ(sa.object_count(), sb.object_count());
  const Framebuffer fa = render_world(sa.world_at(1), 48, 36);
  const Framebuffer fb = render_world(sb.world_at(1), 48, 36);
  EXPECT_EQ(fa, fb);
}

TEST(TwoShotScene, HasExactlyTwoShots) {
  const AnimatedScene scene = two_shot_scene(9, 4);
  const auto shots = scene.split_shots();
  ASSERT_EQ(shots.size(), 2u);
  EXPECT_EQ(shots[0].frame_count, 4);
  EXPECT_EQ(shots[1].first_frame, 4);
  EXPECT_EQ(shots[1].frame_count, 5);
}

TEST(NewtonCradle, AnimationExtentCoversSwing) {
  CradleParams params;
  params.frames = 20;
  const AnimatedScene scene = newton_cradle_scene(params);
  const Aabb extent = animation_extent(scene);
  // The raised marble at frame 0 must be inside the extent.
  const World w0 = scene.world_at(0);
  for (const WorldObject& obj : w0.objects()) {
    if (obj.primitive->is_bounded()) {
      EXPECT_TRUE(extent.overlaps(obj.primitive->bounds()));
    }
  }
}

}  // namespace
}  // namespace now
