// Crash-consistent resume, end to end: interrupt a journaled run at every
// possible journal state (sliced at each record boundary, plus torn tails),
// resume from what a crash would have left on disk, and demand the final
// animation be byte-identical to an uninterrupted run — the tentpole
// guarantee of the recovery subsystem.
#include "src/par/render_farm.h"

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "src/ckpt/journal.h"
#include "src/ckpt/recovery.h"
#include "src/image/image_io.h"
#include "src/scene/builtin_scenes.h"

namespace now {
namespace {

std::string unique_dir(const std::string& stem) {
  static int counter = 0;
  std::string dir = ::testing::TempDir();
  if (!dir.empty() && dir.back() == '/') dir.pop_back();
  dir += "/" + stem + "_" +
         std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
         "_" + std::to_string(counter++);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary);
  f << bytes;
}

void expect_frames_equal(const std::vector<Framebuffer>& got,
                         const std::vector<Framebuffer>& want,
                         const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t f = 0; f < got.size(); ++f) {
    ASSERT_EQ(got[f], want[f]) << label << " frame " << f;
  }
}

FarmConfig journal_config(const std::string& dir) {
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds = {1.0, 0.5, 1.5};  // heterogeneous, deterministic
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = true;
  config.partition.min_split_frames = 2;
  config.output_dir = dir;
  config.output_prefix = "frame";
  config.journal_path = dir + "/render.journal";
  config.journal_fsync = false;        // replay logic under test, not disks
  config.journal_checkpoint_every = 2; // force checkpoint records into play
  return config;
}

TEST(Resume, FreshRunWritesAVerifiableJournal) {
  const std::string dir = unique_dir("resume_fresh");
  const AnimatedScene scene = orbit_scene(3, 6, 48, 36);
  const FarmConfig config = journal_config(dir);
  const FarmResult result = render_farm(scene, config);
  ASSERT_EQ(result.master.frames_completed, scene.frame_count());
  EXPECT_TRUE(result.master.journal_ok);
  EXPECT_GT(result.master.journal_records, 0);
  EXPECT_GT(result.master.journal_checkpoints, 0);
  EXPECT_EQ(result.metrics.counter("ckpt.journal_records"),
            static_cast<std::uint64_t>(result.master.journal_records));

  const JournalReplay replay = replay_journal(config.journal_path);
  ASSERT_TRUE(replay.ok) << replay.error;
  EXPECT_FALSE(replay.truncated_tail);
  for (int f = 0; f < scene.frame_count(); ++f) {
    EXPECT_TRUE(replay.frame_complete[f]) << "frame " << f;
    // The frame file on disk is exactly the assembled frame, and its digest
    // matches the journal record.
    EXPECT_EQ(read_file(frame_file_path(dir, "frame", f)),
              encode_tga(result.frames[f]));
    EXPECT_EQ(replay.frame_digest.at(f), digest_frame(result.frames[f]));
  }
}

TEST(Resume, ByteIdenticalFromEveryRecordBoundary) {
  const AnimatedScene scene = orbit_scene(3, 6, 48, 36);
  const std::string base = unique_dir("resume_base");
  const FarmConfig base_config = journal_config(base);
  const FarmResult clean = render_farm(scene, base_config);
  ASSERT_EQ(clean.master.frames_completed, scene.frame_count());

  const std::string journal_bytes = read_file(base_config.journal_path);
  const JournalReplay replay = replay_journal(base_config.journal_path);
  ASSERT_TRUE(replay.ok) << replay.error;
  ASSERT_GE(replay.record_offsets.size(), 3u);

  // A crash can leave the journal cut at any record boundary (fsync per
  // append) or mid-record (torn tail). The frame files present are a
  // superset of what the journal prefix declares complete — the TGA is
  // renamed into place *before* its record is appended — which copying all
  // of them models conservatively.
  std::vector<std::size_t> cuts(replay.record_offsets);
  for (std::size_t i = 0; i + 1 < replay.record_offsets.size(); i += 3) {
    cuts.push_back(replay.record_offsets[i] + 7);  // torn mid-record
  }
  for (const std::size_t cut : cuts) {
    ASSERT_LE(cut, journal_bytes.size());
    const std::string dir = unique_dir("resume_cut");
    write_file(dir + "/render.journal", journal_bytes.substr(0, cut));
    for (int f = 0; f < scene.frame_count(); ++f) {
      write_file(frame_file_path(dir, "frame", f),
                 read_file(frame_file_path(base, "frame", f)));
    }

    FarmConfig config = journal_config(dir);
    config.resume = true;
    const FarmResult result = render_farm(scene, config);
    ASSERT_TRUE(result.resume.resumed);
    EXPECT_EQ(result.master.frames_restored,
              static_cast<std::int64_t>(result.resume.frames_restored));
    // Restored frames are skipped, not re-rendered: the two counts partition
    // the animation exactly.
    EXPECT_EQ(result.master.frames_completed + result.resume.frames_restored,
              scene.frame_count())
        << "cut@" << cut;
    expect_frames_equal(result.frames, clean.frames,
                        "cut@" + std::to_string(cut));
    // The files on disk are byte-identical to the uninterrupted run's.
    for (int f = 0; f < scene.frame_count(); ++f) {
      EXPECT_EQ(read_file(frame_file_path(dir, "frame", f)),
                read_file(frame_file_path(base, "frame", f)))
          << "cut@" << cut << " frame " << f;
    }
    // The resumed journal is whole again: replayable, no torn tail, every
    // frame complete.
    const JournalReplay after = replay_journal(config.journal_path);
    ASSERT_TRUE(after.ok) << after.error;
    EXPECT_FALSE(after.truncated_tail);
    for (int f = 0; f < scene.frame_count(); ++f) {
      EXPECT_TRUE(after.frame_complete[f]) << "cut@" << cut;
    }
  }
}

TEST(Resume, FullJournalRestoresEverythingWithoutRendering) {
  const AnimatedScene scene = orbit_scene(3, 6, 48, 36);
  const std::string dir = unique_dir("resume_full");
  const FarmConfig base_config = journal_config(dir);
  const FarmResult clean = render_farm(scene, base_config);

  FarmConfig config = base_config;
  config.resume = true;
  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.resume.frames_restored, scene.frame_count());
  EXPECT_EQ(result.master.frames_restored,
            static_cast<std::int64_t>(scene.frame_count()));
  std::int64_t rendered = 0;
  for (const WorkerReport& w : result.workers) rendered += w.frames_rendered;
  EXPECT_EQ(rendered, 0) << "a fully-restored run must render nothing";
  expect_frames_equal(result.frames, clean.frames, "full-restore");
}

TEST(Resume, MissingOrTamperedFrameFilesAreReRendered) {
  const AnimatedScene scene = orbit_scene(3, 6, 48, 36);
  const std::string dir = unique_dir("resume_demote");
  const FarmConfig base_config = journal_config(dir);
  const FarmResult clean = render_farm(scene, base_config);

  // Frame 1 vanishes; frame 2 is silently altered after its record was
  // written. Both must be caught (file check / digest check) and re-rendered
  // to the same bytes.
  std::remove(frame_file_path(dir, "frame", 1).c_str());
  {
    Framebuffer tampered = clean.frames[2];
    tampered.set(0, 0, Rgb8{255, 0, 255});
    ASSERT_TRUE(write_tga(tampered, frame_file_path(dir, "frame", 2)));
  }

  FarmConfig config = base_config;
  config.resume = true;
  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.resume.frames_demoted, 2);
  EXPECT_EQ(result.resume.frames_restored, scene.frame_count() - 2);
  expect_frames_equal(result.frames, clean.frames, "demoted");
  EXPECT_EQ(read_file(frame_file_path(dir, "frame", 1)),
            encode_tga(clean.frames[1]));
  EXPECT_EQ(read_file(frame_file_path(dir, "frame", 2)),
            encode_tga(clean.frames[2]));
}

TEST(Resume, JournalFromADifferentAnimationIsRejected) {
  const AnimatedScene scene = orbit_scene(3, 6, 48, 36);
  const std::string dir = unique_dir("resume_mismatch");
  render_farm(scene, journal_config(dir));

  const AnimatedScene other = orbit_scene(3, 8, 48, 36);
  FarmConfig config = journal_config(dir);
  config.resume = true;
  EXPECT_THROW(render_farm(other, config), std::invalid_argument);
}

TEST(Resume, ValidationRequiresJournalAndOutputDir) {
  const AnimatedScene scene = orbit_scene(2, 4, 32, 24);
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds = {1.0};
  config.resume = true;  // no journal_path
  EXPECT_THROW(validate_farm_config(scene, config), std::invalid_argument);

  FarmConfig no_out;
  no_out.backend = FarmBackend::kSim;
  no_out.worker_speeds = {1.0};
  no_out.journal_path = "/tmp/j";  // journal without output_dir
  EXPECT_THROW(validate_farm_config(scene, no_out), std::invalid_argument);
}

}  // namespace
}  // namespace now
