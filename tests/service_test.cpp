// Multi-tenant render service: job-queue protocol codecs, admission and
// rejection, weighted-fair scheduling, quotas, cancel, preemption, and the
// standing gates — sim determinism and per-shot byte-identity against a
// serial reference render.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "src/par/jobqueue.h"
#include "src/par/render_farm.h"
#include "src/par/serial.h"
#include "src/scene/builtin_scenes.h"

namespace now {
namespace {

// ---------------------------------------------------------------- codecs --

TEST(JobQueueCodec, RoundTripsEveryMessage) {
  ShotSubmit sub;
  sub.client_ref = 7;
  sub.tenant = "acme.films";
  sub.weight = 2.5;
  sub.quota = 3;
  sub.scene_id = 1;
  sub.first_frame = 4;
  sub.frame_count = 12;
  sub.label = "shot-042";
  ShotSubmit sub2;
  ASSERT_TRUE(decode_shot_submit(&sub2, encode_shot_submit(sub)));
  EXPECT_EQ(sub, sub2);

  ShotAccept acc;
  acc.client_ref = 7;
  acc.shot_id = 3;
  acc.base_frame = 24;
  ShotAccept acc2;
  ASSERT_TRUE(decode_shot_accept(&acc2, encode_shot_accept(acc)));
  EXPECT_EQ(acc, acc2);
  EXPECT_TRUE(acc2.accepted());

  ShotAccept rej;
  rej.client_ref = 8;
  rej.shot_id = -1;
  rej.error = "frame range outside scene";
  ShotAccept rej2;
  ASSERT_TRUE(decode_shot_accept(&rej2, encode_shot_accept(rej)));
  EXPECT_EQ(rej, rej2);
  EXPECT_FALSE(rej2.accepted());

  ShotStatusRequest req;
  req.shot_id = 3;
  ShotStatusRequest req2;
  ASSERT_TRUE(
      decode_shot_status_request(&req2, encode_shot_status_request(req)));
  EXPECT_EQ(req, req2);

  ShotStatusReply reply;
  reply.shot_id = 3;
  reply.known = 1;
  reply.phase = ShotPhase::kCancelled;
  reply.frames_done = 5;
  reply.frame_count = 12;
  ShotStatusReply reply2;
  ASSERT_TRUE(
      decode_shot_status_reply(&reply2, encode_shot_status_reply(reply)));
  EXPECT_EQ(reply, reply2);

  ShotCancel cancel;
  cancel.shot_id = 3;
  ShotCancel cancel2;
  ASSERT_TRUE(decode_shot_cancel(&cancel2, encode_shot_cancel(cancel)));
  EXPECT_EQ(cancel, cancel2);

  ShotUpdate update;
  update.shot_id = 3;
  update.phase = ShotPhase::kDone;
  update.frames_done = 12;
  ShotUpdate update2;
  ASSERT_TRUE(decode_shot_update(&update2, encode_shot_update(update)));
  EXPECT_EQ(update, update2);
}

TEST(JobQueueCodec, RejectsMalformedPayloads) {
  ShotSubmit sub;
  sub.tenant = "t";
  sub.frame_count = 1;
  const std::string good = encode_shot_submit(sub);

  ShotSubmit out;
  EXPECT_FALSE(decode_shot_submit(&out, ""));  // empty

  std::string bad_version = good;
  bad_version[0] = static_cast<char>(kJobQueueVersion + 1);
  EXPECT_FALSE(decode_shot_submit(&out, bad_version));

  EXPECT_FALSE(  // truncated body
      decode_shot_submit(&out, good.substr(0, good.size() - 1)));

  EXPECT_FALSE(decode_shot_submit(&out, good + "x"));  // trailing bytes

  ShotAccept acc_out;
  EXPECT_FALSE(decode_shot_accept(&acc_out, good));  // wrong message shape

  // An out-of-range phase byte must be refused, not cast blindly.
  WireWriter w;
  w.u8(kJobQueueVersion);
  w.i32(3);       // shot_id
  w.u8(7);        // phase: no such ShotPhase
  w.i32(1);       // frames_done
  ShotUpdate update_out;
  EXPECT_FALSE(decode_shot_update(&update_out, w.take()));

  WireWriter w2;
  w2.u8(kJobQueueVersion);
  w2.i32(3);      // shot_id
  w2.u8(1);       // known
  w2.u8(200);     // phase: out of range
  w2.i32(1);      // frames_done
  w2.i32(4);      // frame_count
  ShotStatusReply reply_out;
  EXPECT_FALSE(decode_shot_status_reply(&reply_out, w2.take()));
}

TEST(JobQueueCodec, RenderTaskCarriesSceneMapping) {
  RenderTask task;
  task.task_id = 42;
  task.region = PixelRect{0, 0, 48, 36};
  task.first_frame = 10;
  task.frame_count = 4;
  task.trace_ctx = 99;
  task.scene_id = 2;
  task.frame_delta = -6;
  RenderTask task2;
  ASSERT_TRUE(decode_task(&task2, encode_task(task)));
  EXPECT_EQ(task, task2);
}

// --------------------------------------------------------------- helpers --

ClientAction submit_at(double t, const std::string& tenant, double weight,
                       int quota, int first, int count, int scene_id = 0,
                       const std::string& label = "") {
  ClientAction a;
  a.at_seconds = t;
  a.kind = ClientActionKind::kSubmit;
  a.submit.tenant = tenant;
  a.submit.weight = weight;
  a.submit.quota = quota;
  a.submit.scene_id = scene_id;
  a.submit.first_frame = first;
  a.submit.frame_count = count;
  a.submit.label = label;
  return a;
}

ClientAction cancel_at(double t, int submit_index) {
  ClientAction a;
  a.at_seconds = t;
  a.kind = ClientActionKind::kCancel;
  a.submit_index = submit_index;
  return a;
}

ClientAction status_at(double t, int submit_index) {
  ClientAction a;
  a.at_seconds = t;
  a.kind = ClientActionKind::kStatus;
  a.submit_index = submit_index;
  return a;
}

FarmConfig service_config(int workers) {
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds.assign(static_cast<std::size_t>(workers), 1.0);
  config.partition.scheme = PartitionScheme::kFrameDivision;
  config.partition.block_size = 16;
  config.service.enabled = true;
  return config;
}

std::vector<Framebuffer> reference_range(const AnimatedScene& scene,
                                         int first, int count,
                                         const TraceOptions& trace) {
  std::vector<Framebuffer> out;
  for (int f = first; f < first + count; ++f) {
    out.push_back(
        render_world(scene.world_at(f), scene.width(), scene.height(), trace));
  }
  return out;
}

void expect_shot_matches(const FarmResult::ShotResult& shot,
                         const AnimatedScene& scene,
                         const TraceOptions& trace, const std::string& label) {
  const auto ref = reference_range(scene, shot.summary.scene_first_frame,
                                   shot.summary.frame_count, trace);
  ASSERT_EQ(shot.frames.size(), ref.size()) << label;
  for (std::size_t f = 0; f < ref.size(); ++f) {
    ASSERT_EQ(shot.frames[f], ref[f])
        << label << " shot " << shot.summary.shot_id << " frame " << f;
  }
}

const TenantSummary& tenant_named(const FarmResult& result,
                                  const std::string& name) {
  for (const TenantSummary& t : result.tenants) {
    if (t.name == name) return t;
  }
  ADD_FAILURE() << "no tenant named " << name;
  static const TenantSummary kEmpty{};
  return kEmpty;
}

int tenant_index(const FarmResult& result, const std::string& name) {
  for (int t = 0; t < static_cast<int>(result.tenants.size()); ++t) {
    if (result.tenants[t].name == name) return t;
  }
  return -1;
}

// ------------------------------------------------------------ end-to-end --

TEST(Service, SingleShotMatchesReference) {
  const AnimatedScene scene = orbit_scene(3, 8, 48, 36);
  FarmConfig config = service_config(2);
  ClientScript script;
  script.actions.push_back(submit_at(0.0, "solo", 1.0, 0, 2, 5));
  config.service.clients.push_back(script);

  const FarmResult result = render_farm(scene, config);
  ASSERT_EQ(result.shots.size(), 1u);
  EXPECT_EQ(result.shots[0].summary.phase, ShotPhase::kDone);
  EXPECT_EQ(result.shots[0].summary.frames_done, 5);
  EXPECT_EQ(result.master.shots_submitted, 1);
  EXPECT_EQ(result.master.shots_completed, 1);
  ASSERT_EQ(result.clients.size(), 1u);
  ASSERT_EQ(result.clients[0].shot_ids.size(), 1u);
  EXPECT_EQ(result.clients[0].shot_ids[0], 0);
  expect_shot_matches(result.shots[0], scene, config.coherence.trace,
                      "single");
  // The submitting client hears the terminal phase without polling.
  ASSERT_FALSE(result.clients[0].updates.empty());
  EXPECT_EQ(result.clients[0].updates.back().phase, ShotPhase::kDone);
}

TEST(Service, TwoTenantsWeighted2to1) {
  const AnimatedScene scene = orbit_scene(3, 8, 48, 36);
  FarmConfig config = service_config(2);
  ClientScript heavy, light;
  for (int i = 0; i < 6; ++i) {
    heavy.actions.push_back(submit_at(0.0, "heavy", 2.0, 0, 0, 4));
    light.actions.push_back(submit_at(0.0, "light", 1.0, 0, 0, 4));
  }
  config.service.clients.push_back(heavy);
  config.service.clients.push_back(light);

  const FarmResult result = render_farm(scene, config);
  ASSERT_EQ(result.shots.size(), 12u);
  for (const auto& shot : result.shots) {
    EXPECT_EQ(shot.summary.phase, ShotPhase::kDone);
    expect_shot_matches(shot, scene, config.coherence.trace, "weighted");
  }

  // Fairness gate: over the contended window — the prefix of the grant log
  // where both tenants still have work — the heavy tenant's pixel-frame
  // units must track its 2:1 weight. End-of-run totals are equal by
  // construction (every shot completes), so the window is what the
  // scheduler actually controls.
  const int heavy_id = tenant_index(result, "heavy");
  const int light_id = tenant_index(result, "light");
  ASSERT_GE(heavy_id, 0);
  ASSERT_GE(light_id, 0);
  int last_heavy = -1;
  int last_light = -1;
  for (int i = 0; i < static_cast<int>(result.assignment_log.size()); ++i) {
    if (result.assignment_log[i].tenant == heavy_id) last_heavy = i;
    if (result.assignment_log[i].tenant == light_id) last_light = i;
  }
  const int window_end = std::min(last_heavy, last_light);
  ASSERT_GE(window_end, 6) << "contended window too small to gate";
  double heavy_units = 0.0;
  double light_units = 0.0;
  for (int i = 0; i <= window_end; ++i) {
    const ServiceAssignment& grant = result.assignment_log[i];
    if (grant.tenant == heavy_id) heavy_units += grant.units;
    if (grant.tenant == light_id) light_units += grant.units;
  }
  ASSERT_GT(light_units, 0.0);
  const double ratio = heavy_units / light_units;
  EXPECT_GE(ratio, 1.4) << "heavy tenant under-served: " << ratio;
  EXPECT_LE(ratio, 3.0) << "heavy tenant over-served: " << ratio;
}

TEST(Service, QuotaCapsInflight) {
  const AnimatedScene scene = orbit_scene(3, 8, 48, 36);
  FarmConfig config = service_config(3);
  ClientScript capped, greedy;
  for (int i = 0; i < 4; ++i) {
    capped.actions.push_back(submit_at(0.0, "capped", 4.0, 1, 0, 4));
  }
  greedy.actions.push_back(submit_at(0.0, "greedy", 1.0, 0, 0, 8));
  config.service.clients.push_back(capped);
  config.service.clients.push_back(greedy);

  const FarmResult result = render_farm(scene, config);
  for (const auto& shot : result.shots) {
    EXPECT_EQ(shot.summary.phase, ShotPhase::kDone);
  }
  // Even with 4 shots queued and the highest weight, the capped tenant
  // never holds more than its quota of workers.
  EXPECT_LE(tenant_named(result, "capped").peak_inflight, 1);
  EXPECT_GE(tenant_named(result, "greedy").peak_inflight, 1);
}

TEST(Service, CancelMidFlightLeavesOtherShotIdentical) {
  const AnimatedScene scene = orbit_scene(3, 8, 48, 36);

  // Pass 1: no cancel — measures when the run ends so pass 2 can aim its
  // cancel at the middle of the flight. The sim makes this exact.
  FarmConfig config = service_config(2);
  ClientScript keeper, canceller;
  keeper.actions.push_back(submit_at(0.0, "keeper", 1.0, 0, 0, 6));
  canceller.actions.push_back(submit_at(0.0, "victim", 1.0, 0, 0, 6));
  config.service.clients.push_back(keeper);
  config.service.clients.push_back(canceller);
  const FarmResult full = render_farm(scene, config);
  ASSERT_EQ(full.shots.size(), 2u);
  const double mid = full.elapsed_seconds * 0.5;
  ASSERT_GT(mid, 0.0);

  config.service.clients[1].actions.push_back(cancel_at(mid, 0));
  const FarmResult result = render_farm(scene, config);

  ASSERT_EQ(result.shots.size(), 2u);
  const auto& kept = result.shots[0].summary.tenant == "keeper"
                         ? result.shots[0]
                         : result.shots[1];
  const auto& cancelled = result.shots[0].summary.tenant == "victim"
                              ? result.shots[0]
                              : result.shots[1];
  EXPECT_EQ(result.master.shots_cancelled, 1);
  EXPECT_EQ(cancelled.summary.phase, ShotPhase::kCancelled);
  EXPECT_LT(cancelled.summary.frames_done, cancelled.summary.frame_count);
  // The standing gate: the surviving shot's frames are byte-identical to a
  // solo serial render, cancel or no cancel.
  EXPECT_EQ(kept.summary.phase, ShotPhase::kDone);
  expect_shot_matches(kept, scene, config.coherence.trace, "kept");
  // The cancelling client heard the terminal phase.
  ASSERT_FALSE(result.clients[1].updates.empty());
  EXPECT_EQ(result.clients[1].updates.back().phase, ShotPhase::kCancelled);
  // A cancel ends the run earlier than rendering everything would have.
  EXPECT_LT(result.elapsed_seconds, full.elapsed_seconds);
}

TEST(Service, RejectsInvalidSubmits) {
  const AnimatedScene scene = orbit_scene(3, 8, 48, 36);
  FarmConfig config = service_config(2);
  ClientScript script;
  script.actions.push_back(submit_at(0.0, "", 1.0, 0, 0, 4));     // no tenant
  script.actions.push_back(submit_at(0.0, "t", -1.0, 0, 0, 4));   // weight
  script.actions.push_back(submit_at(0.0, "t", 1.0, 0, 0, 99));   // range
  script.actions.push_back(submit_at(0.0, "t", 1.0, 0, 0, 4, 5));  // scene_id
  ClientAction malformed;
  malformed.at_seconds = 0.0;
  malformed.kind = ClientActionKind::kMalformed;
  malformed.raw = "not a ShotSubmit";
  script.actions.push_back(malformed);
  script.actions.push_back(submit_at(0.0, "t", 1.0, 0, 2, 3));    // good
  config.service.clients.push_back(script);

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.master.shots_rejected, 5);
  EXPECT_EQ(result.master.shots_submitted, 1);
  ASSERT_EQ(result.clients.size(), 1u);
  const ClientReport& report = result.clients[0];
  ASSERT_EQ(report.shot_ids.size(), 6u);
  EXPECT_EQ(report.rejects, 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(report.shot_ids[i], -1) << "submit " << i;
    EXPECT_FALSE(report.errors[i].empty()) << "submit " << i;
  }
  EXPECT_GE(report.shot_ids[5], 0);
  EXPECT_TRUE(report.errors[5].empty());
  ASSERT_EQ(result.shots.size(), 1u);
  EXPECT_EQ(result.shots[0].summary.phase, ShotPhase::kDone);
  expect_shot_matches(result.shots[0], scene, config.coherence.trace,
                      "survivor");
}

TEST(Service, StatusRepliesTrackProgress) {
  const AnimatedScene scene = orbit_scene(3, 8, 48, 36);
  FarmConfig config = service_config(2);
  ClientScript script;
  script.actions.push_back(submit_at(0.0, "poller", 1.0, 0, 0, 6));
  script.actions.push_back(status_at(0.0, 0));     // parks until the accept
  script.actions.push_back(status_at(1000.0, 0));  // long after completion
  script.actions.push_back(status_at(1000.0, 99));  // no such submit: dropped
  config.service.clients.push_back(script);

  const FarmResult result = render_farm(scene, config);
  ASSERT_EQ(result.clients.size(), 1u);
  const ClientReport& report = result.clients[0];
  ASSERT_EQ(report.statuses.size(), 2u);
  for (const ShotStatusReply& reply : report.statuses) {
    EXPECT_EQ(reply.shot_id, report.shot_ids[0]);
    EXPECT_EQ(reply.known, 1);
    EXPECT_EQ(reply.frame_count, 6);
  }
  // The late poll sees the terminal phase with every frame done.
  EXPECT_EQ(report.statuses.back().phase, ShotPhase::kDone);
  EXPECT_EQ(report.statuses.back().frames_done, 6);
}

TEST(Service, PreemptsSpeculativeCloneUnderLoad) {
  const AnimatedScene scene = orbit_scene(3, 6, 48, 36);

  // Heterogeneous workers + end-game speculation: once the fast worker runs
  // out of queued tasks it clones a straggler's task. A tenant submitting
  // into that state finds every worker busy — the scheduler must preempt
  // the clone (duplicate work) rather than stall admitted work.
  FarmConfig solo;
  solo.backend = FarmBackend::kSim;
  solo.worker_speeds = {1.0, 1.0, 0.2};
  // Sequence division with adaptive stealing off: the shot splits into
  // exactly three static two-frame tasks, one per worker.
  solo.partition.scheme = PartitionScheme::kSequenceDivision;
  solo.partition.adaptive = false;
  solo.speculation = true;
  solo.service.enabled = true;
  solo.obs.trace = true;
  ClientScript first;
  first.actions.push_back(submit_at(0.0, "early", 1.0, 0, 0, 6));
  solo.service.clients.push_back(first);
  const FarmResult alone = render_farm(scene, solo);
  ASSERT_EQ(alone.shots.size(), 1u);
  ASSERT_EQ(alone.shots[0].summary.phase, ShotPhase::kDone);
  ASSERT_GE(alone.faults.speculations_launched, 1)
      << "scenario must reach end-game speculation";

  // The clone is in flight from the speculation launch until the shot
  // completes. The sim is deterministic, so the solo trace gives the exact
  // window; the midpoint is safely inside it. (Deriving the window from
  // elapsed_seconds would overshoot: the straggler's written-off compute
  // charge inflates the max rank clock past the actual finish.)
  double spec_at = -1.0;
  double done_at = -1.0;
  for (const TraceEvent& e : alone.trace_events) {
    const std::string name = e.name;
    if (spec_at < 0.0 && name == "task.speculate") spec_at = e.ts_seconds;
    if (done_at < 0.0 && name == "shot.done") done_at = e.ts_seconds;
  }
  ASSERT_GT(spec_at, 0.0);
  ASSERT_GT(done_at, spec_at);

  FarmConfig config = solo;
  ClientScript late;
  // Demand more tasks than the idle spare can absorb, so the backlog can
  // only drain by taking the clone's worker back.
  late.actions.push_back(
      submit_at((spec_at + done_at) / 2.0, "late", 1.0, 0, 0, 6));
  config.service.clients.push_back(late);
  const FarmResult result = render_farm(scene, config);

  ASSERT_EQ(result.shots.size(), 2u);
  for (const auto& shot : result.shots) {
    EXPECT_EQ(shot.summary.phase, ShotPhase::kDone);
    expect_shot_matches(shot, scene, config.coherence.trace, "preempt");
  }
  EXPECT_GE(result.master.preemptions, 1)
      << "late submit should preempt the speculative clone"
      << " (solo elapsed " << alone.elapsed_seconds << ", solo specs "
      << alone.faults.speculations_launched << ", combined specs "
      << result.faults.speculations_launched << ", combined elapsed "
      << result.elapsed_seconds << ", grants " << result.assignment_log.size()
      << ")";
}

TEST(Service, MultiSceneShots) {
  const AnimatedScene primary = orbit_scene(3, 8, 48, 36);
  const AnimatedScene extra = orbit_scene(5, 6, 48, 36);
  FarmConfig config = service_config(2);
  config.service.extra_scenes.push_back(&extra);
  ClientScript script;
  script.actions.push_back(submit_at(0.0, "t", 1.0, 0, 1, 4, 0, "prime"));
  script.actions.push_back(submit_at(0.0, "t", 1.0, 0, 2, 3, 1, "extra"));
  config.service.clients.push_back(script);

  const FarmResult result = render_farm(primary, config);
  ASSERT_EQ(result.shots.size(), 2u);
  for (const auto& shot : result.shots) {
    EXPECT_EQ(shot.summary.phase, ShotPhase::kDone);
    const AnimatedScene& scene = shot.summary.scene_id == 0 ? primary : extra;
    expect_shot_matches(shot, scene, config.coherence.trace,
                        shot.summary.label);
  }
}

TEST(Service, SimRunsAreDeterministic) {
  const AnimatedScene scene = orbit_scene(3, 8, 48, 36);
  FarmConfig config = service_config(2);
  ClientScript a, b;
  for (int i = 0; i < 3; ++i) {
    a.actions.push_back(submit_at(0.0, "a", 2.0, 0, 0, 4));
    b.actions.push_back(submit_at(0.0, "b", 1.0, 1, 0, 4));
  }
  config.service.clients.push_back(a);
  config.service.clients.push_back(b);

  const FarmResult x = render_farm(scene, config);
  const FarmResult y = render_farm(scene, config);
  EXPECT_EQ(x.elapsed_seconds, y.elapsed_seconds);
  EXPECT_EQ(x.runtime.messages, y.runtime.messages);
  ASSERT_EQ(x.assignment_log.size(), y.assignment_log.size());
  for (std::size_t i = 0; i < x.assignment_log.size(); ++i) {
    EXPECT_EQ(x.assignment_log[i].tenant, y.assignment_log[i].tenant);
    EXPECT_EQ(x.assignment_log[i].shot_id, y.assignment_log[i].shot_id);
    EXPECT_EQ(x.assignment_log[i].units, y.assignment_log[i].units);
  }
  ASSERT_EQ(x.shots.size(), y.shots.size());
  for (std::size_t s = 0; s < x.shots.size(); ++s) {
    ASSERT_EQ(x.shots[s].frames.size(), y.shots[s].frames.size());
    for (std::size_t f = 0; f < x.shots[s].frames.size(); ++f) {
      ASSERT_EQ(x.shots[s].frames[f], y.shots[s].frames[f])
          << "shot " << s << " frame " << f;
    }
  }
}

TEST(Service, TcpSmoke) {
  const AnimatedScene scene = orbit_scene(3, 4, 48, 36);
  FarmConfig config;
  config.backend = FarmBackend::kTcp;
  config.workers = 2;
  config.partition.scheme = PartitionScheme::kFrameDivision;
  config.service.enabled = true;
  ClientScript a, b;
  a.actions.push_back(submit_at(0.0, "a", 2.0, 0, 0, 2));
  b.actions.push_back(submit_at(0.0, "b", 1.0, 0, 2, 2));
  config.service.clients.push_back(a);
  config.service.clients.push_back(b);

  const FarmResult result = render_farm(scene, config);
  ASSERT_EQ(result.shots.size(), 2u);
  for (const auto& shot : result.shots) {
    EXPECT_EQ(shot.summary.phase, ShotPhase::kDone);
    expect_shot_matches(shot, scene, config.coherence.trace, "tcp");
  }
}

TEST(Service, ValidatesConfig) {
  const AnimatedScene scene = orbit_scene(3, 4, 48, 36);
  FarmConfig base = service_config(2);
  ClientScript script;
  script.actions.push_back(submit_at(0.0, "t", 1.0, 0, 0, 2));
  base.service.clients.push_back(script);
  ASSERT_NO_THROW(validate_farm_config(scene, base));

  FarmConfig no_clients = base;
  no_clients.service.clients.clear();
  EXPECT_THROW(validate_farm_config(scene, no_clients),
               std::invalid_argument);

  FarmConfig sharded = base;
  sharded.shards = 2;
  EXPECT_THROW(validate_farm_config(scene, sharded), std::invalid_argument);

  FarmConfig journaled = base;
  journaled.output_dir = ".";
  journaled.journal_path = "svc.journal";
  EXPECT_THROW(validate_farm_config(scene, journaled),
               std::invalid_argument);

  FarmConfig bad_scene = base;
  const AnimatedScene wrong_dims = orbit_scene(3, 4, 64, 48);
  bad_scene.service.extra_scenes.push_back(&wrong_dims);
  EXPECT_THROW(validate_farm_config(scene, bad_scene),
               std::invalid_argument);

  FarmConfig bad_time = base;
  bad_time.service.clients[0].actions[0].at_seconds = -1.0;
  EXPECT_THROW(validate_farm_config(scene, bad_time), std::invalid_argument);
}

}  // namespace
}  // namespace now
