#include "src/image/image_diff.h"

#include <gtest/gtest.h>

namespace now {
namespace {

TEST(PixelMask, SetCountAndSize) {
  PixelMask m(4, 3);
  EXPECT_EQ(m.count(), 0);
  EXPECT_EQ(m.pixel_count(), 12);
  m.set(1, 2, true);
  m.set(3, 0, true);
  EXPECT_EQ(m.count(), 2);
  EXPECT_TRUE(m.at(1, 2));
  EXPECT_FALSE(m.at(0, 0));
  m.set(1, 2, false);
  EXPECT_EQ(m.count(), 1);
}

TEST(PixelMask, FilledConstructor) {
  const PixelMask m(3, 3, true);
  EXPECT_EQ(m.count(), 9);
}

TEST(PixelMask, MinusAndUnion) {
  PixelMask a(2, 2);
  PixelMask b(2, 2);
  a.set(0, 0, true);
  a.set(1, 1, true);
  b.set(1, 1, true);
  const PixelMask diff = a.minus(b);
  EXPECT_EQ(diff.count(), 1);
  EXPECT_TRUE(diff.at(0, 0));
  const PixelMask u = a.union_with(b);
  EXPECT_EQ(u.count(), 2);
}

TEST(PixelMask, SubsetOf) {
  PixelMask small(2, 2);
  PixelMask big(2, 2);
  small.set(0, 1, true);
  big.set(0, 1, true);
  big.set(1, 0, true);
  EXPECT_TRUE(small.subset_of(big));
  EXPECT_FALSE(big.subset_of(small));
  EXPECT_TRUE(small.subset_of(small));
  EXPECT_TRUE(PixelMask(2, 2).subset_of(small));  // empty set
}

TEST(PixelMask, ToImageIsWhiteOnBlack) {
  PixelMask m(2, 1);
  m.set(1, 0, true);
  const Framebuffer img = m.to_image();
  EXPECT_EQ(img.at(0, 0), (Rgb8{0, 0, 0}));
  EXPECT_EQ(img.at(1, 0), (Rgb8{255, 255, 255}));
}

TEST(ActualDiff, DetectsChangedPixels) {
  Framebuffer a(3, 3, Rgb8{10, 10, 10});
  Framebuffer b = a;
  b.set(2, 1, Rgb8{10, 10, 11});
  const PixelMask mask = actual_diff_mask(a, b);
  EXPECT_EQ(mask.count(), 1);
  EXPECT_TRUE(mask.at(2, 1));
}

TEST(ActualDiff, IdenticalFramesAreEmpty) {
  const Framebuffer a(5, 5, Rgb8{1, 2, 3});
  EXPECT_EQ(actual_diff_mask(a, a).count(), 0);
}

TEST(DiffStats, ChangedFraction) {
  Framebuffer a(10, 10);
  Framebuffer b = a;
  for (int i = 0; i < 25; ++i) b.set(i % 10, i / 10, Rgb8{255, 0, 0});
  const DiffStats stats = diff_stats(a, b);
  EXPECT_EQ(stats.total_pixels, 100);
  EXPECT_EQ(stats.changed_pixels, 25);
  EXPECT_DOUBLE_EQ(stats.changed_fraction(), 0.25);
}

TEST(MeanAbsoluteError, Basics) {
  Framebuffer a(1, 2, Rgb8{0, 0, 0});
  Framebuffer b(1, 2, Rgb8{0, 0, 0});
  EXPECT_DOUBLE_EQ(mean_absolute_error(a, b), 0.0);
  b.set(0, 0, Rgb8{30, 60, 90});
  // (30+60+90) / (3 channels * 2 pixels) = 30.
  EXPECT_DOUBLE_EQ(mean_absolute_error(a, b), 30.0);
}

}  // namespace
}  // namespace now
