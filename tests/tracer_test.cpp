#include "src/trace/tracer.h"

#include <gtest/gtest.h>

#include "src/geom/plane.h"
#include "src/geom/sphere.h"
#include "src/trace/render.h"

namespace now {
namespace {

/// One matte sphere over a floor, single point light.
World simple_world() {
  World world;
  const int red = world.add_material(Material::matte({0.9, 0.1, 0.1}));
  const int gray = world.add_material(Material::matte(Color::gray(0.6)));
  world.add_object(std::make_unique<Sphere>(Vec3{0, 1, 0}, 1.0), red);
  world.add_object(std::make_unique<Plane>(Vec3{0, 1, 0}, 0.0), gray);
  world.add_light(Light::point({5, 8, 5}, Color::white(), 1.0));
  world.set_camera(Camera{{0, 2, 6}, {0, 1, 0}, {0, 1, 0}, 45.0, 4.0 / 3.0});
  world.set_background({0.1, 0.1, 0.2});
  return world;
}

TEST(Tracer, MissReturnsBackground) {
  const World world = simple_world();
  const BruteForceAccelerator accel(world);
  Tracer tracer(world, accel);
  const Color c =
      tracer.trace({{0, 10, 0}, {0, 1, 0}}, 0, 1.0, 0, 0, RayKind::kCamera);
  EXPECT_EQ(c, world.background());
  EXPECT_EQ(tracer.stats().camera_rays, 1u);
}

TEST(Tracer, HitIsLitFromLightSide) {
  const World world = simple_world();
  const BruteForceAccelerator accel(world);
  Tracer tracer(world, accel);
  // Point on the sphere facing the light vs facing away.
  const Color lit =
      tracer.trace({{5, 4, 5}, Vec3(-5, -3, -5).normalized()}, 0, 1.0, 0, 0,
                   RayKind::kCamera);
  const Color dark =
      tracer.trace({{-5, 1, -5}, Vec3(5, 0, 5).normalized()}, 0, 1.0, 0, 0,
                   RayKind::kCamera);
  EXPECT_GT(lit.max_component(), dark.max_component());
}

TEST(Tracer, ShadowedPointGetsOnlyAmbient) {
  const World world = simple_world();
  const BruteForceAccelerator accel(world);
  Tracer tracer(world, accel);
  // The floor directly under the sphere is shadowed from the light? The
  // light is at (5,8,5); the shadow falls along that axis. Compute the
  // floor point behind the sphere as seen from the light.
  const Vec3 light{5, 8, 5};
  const Vec3 sphere_center{0, 1, 0};
  const Vec3 dir = (sphere_center - light).normalized();
  // Continue past the sphere to the floor.
  double t_floor = -light.y / dir.y;
  const Vec3 shadow_point = light + dir * t_floor;
  const Ray ray{shadow_point + Vec3{0, 5, 0}, {0, -1, 0}};
  const Color shadowed = tracer.trace(ray, 0, 1.0, 0, 0, RayKind::kCamera);
  // Ambient-only: 0.1 * 0.6 gray = 0.06.
  EXPECT_NEAR(shadowed.r, 0.06, 1e-9);
}

TEST(Tracer, ShadowsCanBeDisabled) {
  const World world = simple_world();
  const BruteForceAccelerator accel(world);
  TraceOptions options;
  options.shadows = false;
  Tracer tracer(world, accel, options);
  Framebuffer fb(32, 24);
  render_frame(&tracer, &fb);
  EXPECT_EQ(tracer.stats().shadow_rays, 0u);
}

TEST(Tracer, MaxDepthBoundsRecursion) {
  // Two parallel mirrors: rays bounce until the depth limit.
  World world;
  const int mirror = world.add_material(Material::mirror(Color::white(), 0.9));
  world.add_object(std::make_unique<Plane>(Vec3{0, 0, 1}, -5.0), mirror);
  world.add_object(std::make_unique<Plane>(Vec3{0, 0, -1}, -5.0), mirror);
  world.set_camera(Camera{{0, 0, 0}, {0, 0, -1}, {0, 1, 0}, 60.0, 1.0});
  const BruteForceAccelerator accel(world);
  for (const int depth : {1, 3, 5}) {
    TraceOptions options;
    options.max_depth = depth;
    options.shadows = false;
    Tracer tracer(world, accel, options);
    tracer.trace({{0, 0, 0}, {0, 0, -1}}, 0, 1.0, 0, 0, RayKind::kCamera);
    EXPECT_EQ(tracer.stats().reflection_rays, static_cast<std::uint64_t>(depth));
  }
}

TEST(Tracer, ReflectionShowsMirroredObject) {
  // A mirror floor under a red sphere: looking at the floor in front of the
  // sphere shows red.
  World world;
  const int red = world.add_material(Material::matte({0.9, 0.0, 0.0}));
  const int mirror = world.add_material(Material::mirror(Color::white(), 0.9));
  world.add_object(std::make_unique<Sphere>(Vec3{0, 1.5, 0}, 1.0), red);
  world.add_object(std::make_unique<Plane>(Vec3{0, 1, 0}, 0.0), mirror);
  world.add_light(Light::point({0, 8, 6}, Color::white(), 1.0));
  world.set_background(Color::black());
  const BruteForceAccelerator accel(world);
  Tracer tracer(world, accel);
  // Aim at the floor so the mirror direction runs up into the sphere.
  const Color c = tracer.trace({{0, 1.5, 4}, Vec3(0, -1.3, -1.55).normalized()},
                               0, 1.0, 0, 0, RayKind::kCamera);
  // The white floor lighting contributes equally to r and g; the reflected
  // sphere adds red only. Require a solid red excess.
  EXPECT_GT(c.r - c.g, 0.15);
}

TEST(Tracer, RefractionPassesThroughGlass) {
  // A glass slab (sphere) between camera and a lit back plane: light makes
  // it through (non-black).
  World world;
  const int glass = world.add_material(Material::glass(1.5));
  const int white = world.add_material(Material::matte(Color::white()));
  world.add_object(std::make_unique<Sphere>(Vec3{0, 0, 0}, 1.0), glass);
  world.add_object(std::make_unique<Plane>(Vec3{0, 0, 1}, -4.0), white);
  world.add_light(Light::point({0, 5, 2}, Color::white(), 1.0));
  world.set_background(Color::black());
  const BruteForceAccelerator accel(world);
  Tracer tracer(world, accel);
  const Color c =
      tracer.trace({{0, 0, 3}, {0, 0, -1}}, 0, 1.0, 0, 0, RayKind::kCamera);
  EXPECT_GT(c.max_component(), 0.05);
  EXPECT_GT(tracer.stats().refraction_rays, 0u);
}

TEST(Tracer, ListenerSeesEveryRayKind) {
  struct Recorder final : RayListener {
    std::uint64_t counts[4] = {0, 0, 0, 0};
    void on_segment(int, int, const Ray&, double, RayKind kind) override {
      ++counts[static_cast<int>(kind)];
    }
  };
  World world;
  const int glass = world.add_material(Material::glass(1.5));
  const int gray = world.add_material(Material::matte(Color::gray(0.5)));
  world.add_object(std::make_unique<Sphere>(Vec3{0, 1, 0}, 1.0), glass);
  world.add_object(std::make_unique<Plane>(Vec3{0, 1, 0}, 0.0), gray);
  world.add_light(Light::point({3, 6, 3}, Color::white(), 1.0));
  world.set_camera(Camera{{0, 1.5, 5}, {0, 1, 0}, {0, 1, 0}, 45.0, 1.0});
  const BruteForceAccelerator accel(world);
  Tracer tracer(world, accel);
  Recorder recorder;
  tracer.set_listener(&recorder);
  Framebuffer fb(24, 24);
  render_frame(&tracer, &fb);
  EXPECT_EQ(recorder.counts[0], tracer.stats().camera_rays);
  EXPECT_EQ(recorder.counts[1], tracer.stats().reflection_rays);
  EXPECT_EQ(recorder.counts[2], tracer.stats().refraction_rays);
  EXPECT_EQ(recorder.counts[3], tracer.stats().shadow_rays);
  EXPECT_GT(recorder.counts[2], 0u);
  EXPECT_GT(recorder.counts[3], 0u);
}

TEST(Tracer, SupersamplingMultipliesCameraRays) {
  const World world = simple_world();
  const BruteForceAccelerator accel(world);
  TraceOptions options;
  options.supersample_axis = 2;
  Tracer tracer(world, accel, options);
  tracer.shade_pixel(4, 4, 16, 12);
  EXPECT_EQ(tracer.stats().camera_rays, 4u);
  EXPECT_EQ(tracer.stats().pixels_shaded, 1u);
}

TEST(Tracer, DirectionalLightIlluminates) {
  World world;
  const int gray = world.add_material(Material::matte(Color::gray(0.8)));
  world.add_object(std::make_unique<Plane>(Vec3{0, 1, 0}, 0.0), gray);
  world.add_light(Light::directional({0, -1, 0}, Color::white(), 1.0));
  world.set_background(Color::black());
  const BruteForceAccelerator accel(world);
  Tracer tracer(world, accel);
  const Color c =
      tracer.trace({{0, 3, 0}, {0, -1, 0}}, 0, 1.0, 0, 0, RayKind::kCamera);
  // ambient 0.1*0.8 + diffuse 0.8*0.8 + perfectly aligned Phong lobe 0.1.
  EXPECT_NEAR(c.r, 0.08 + 0.64 + 0.1, 1e-9);
}

TEST(Tracer, StatsAccumulateAcrossPixels) {
  const World world = simple_world();
  const BruteForceAccelerator accel(world);
  Tracer tracer(world, accel);
  Framebuffer fb(16, 12);
  const TraceStats stats = render_frame(&tracer, &fb);
  EXPECT_EQ(stats.camera_rays, 16u * 12u);
  EXPECT_EQ(stats.pixels_shaded, 16u * 12u);
  EXPECT_GT(stats.shadow_rays, 0u);
  tracer.reset_stats();
  EXPECT_EQ(tracer.stats().total_rays(), 0u);
}

TEST(TraceStats, Accumulation) {
  TraceStats a;
  a.camera_rays = 1;
  a.shadow_rays = 2;
  TraceStats b;
  b.reflection_rays = 3;
  b.refraction_rays = 4;
  a += b;
  EXPECT_EQ(a.total_rays(), 10u);

  // Binary + matches += without mutating the operands.
  const TraceStats c = a + b;
  EXPECT_EQ(c.total_rays(), 17u);
  EXPECT_EQ(c.reflection_rays, 6u);
  EXPECT_EQ(a.total_rays(), 10u);
  EXPECT_EQ(b.total_rays(), 7u);
}

TEST(TraceStats, TotalRaysIsOverflowSafe) {
  // Every field is uint64_t; sums near 2^32 must not wrap.
  TraceStats s;
  s.camera_rays = (std::uint64_t{1} << 32) - 1;
  s.shadow_rays = (std::uint64_t{1} << 32) - 1;
  EXPECT_EQ(s.total_rays(), ((std::uint64_t{1} << 32) - 1) * 2);
  const TraceStats doubled = s + s;
  EXPECT_EQ(doubled.total_rays(), ((std::uint64_t{1} << 32) - 1) * 4);
}

}  // namespace
}  // namespace now
