#include "src/trace/world.h"

#include <gtest/gtest.h>

#include "src/geom/plane.h"
#include "src/geom/sphere.h"

namespace now {
namespace {

World sample_world() {
  World world;
  const int a = world.add_material(Material::matte({1, 0, 0}));
  const int b = world.add_material(Material::glass());
  world.add_object(std::make_unique<Sphere>(Vec3{0, 1, 0}, 1.0), a);
  world.add_object(std::make_unique<Sphere>(Vec3{3, 1, 0}, 0.5), b);
  world.add_object(std::make_unique<Plane>(Vec3{0, 1, 0}, 0.0), a);
  world.add_light(Light::point({0, 5, 0}, Color::white(), 1.0));
  world.set_background({0.1, 0.2, 0.3});
  return world;
}

TEST(World, AccessorsAndIds) {
  const World world = sample_world();
  EXPECT_EQ(world.object_count(), 3);
  EXPECT_EQ(world.material_count(), 2);
  EXPECT_EQ(world.lights().size(), 1u);
  // Default object ids equal indices.
  for (int i = 0; i < world.object_count(); ++i) {
    EXPECT_EQ(world.object(i).object_id, i);
  }
}

TEST(World, ExplicitObjectIdsPreserved) {
  World world;
  const int mat = world.add_material(Material::matte(Color::white()));
  world.add_object(std::make_unique<Sphere>(Vec3{0, 0, 0}, 1.0), mat, 42);
  EXPECT_EQ(world.object(0).object_id, 42);
}

TEST(World, BoundedExtentExcludesPlanes) {
  const World world = sample_world();
  const Aabb extent = world.bounded_extent();
  EXPECT_FALSE(extent.empty());
  // Covers both spheres.
  EXPECT_LE(extent.lo.x, -1.0);
  EXPECT_GE(extent.hi.x, 3.5);
  // The infinite plane contributes nothing: y bounds stay sphere-sized.
  EXPECT_GE(extent.lo.y, -1e-9);
  EXPECT_LE(extent.hi.y, 2.0 + 1e-9);
}

TEST(World, CloneIsDeepAndEquivalent) {
  const World world = sample_world();
  const World copy = world.clone();
  EXPECT_EQ(copy.object_count(), world.object_count());
  EXPECT_EQ(copy.material_count(), world.material_count());
  EXPECT_EQ(copy.background(), world.background());
  EXPECT_NE(copy.object(0).primitive.get(), world.object(0).primitive.get());
  // Clone intersects identically.
  Hit h1, h2;
  const Ray ray{{0, 1, 5}, {0, 0, -1}};
  ASSERT_TRUE(world.object(0).primitive->intersect(ray, 1e-9, 1e9, &h1));
  ASSERT_TRUE(copy.object(0).primitive->intersect(ray, 1e-9, 1e9, &h2));
  EXPECT_DOUBLE_EQ(h1.t, h2.t);
}

TEST(World, EmptyWorldExtentIsEmpty) {
  const World world;
  EXPECT_TRUE(world.bounded_extent().empty());
}

}  // namespace
}  // namespace now
