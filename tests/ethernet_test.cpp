#include "src/sim/ethernet.h"

#include <gtest/gtest.h>

namespace now {
namespace {

EthernetParams simple_params() {
  EthernetParams p;
  p.bandwidth_bytes_per_sec = 1000.0;  // 1 KB/s for easy math
  p.latency_seconds = 0.5;
  p.per_message_overhead_bytes = 0;
  return p;
}

TEST(Ethernet, SingleTransmission) {
  EthernetModel eth(simple_params());
  // 500 bytes at 1000 B/s = 0.5 s wire + 0.5 s latency.
  const double deliver = eth.transmit(10.0, 500);
  EXPECT_DOUBLE_EQ(deliver, 11.0);
  EXPECT_DOUBLE_EQ(eth.free_at(), 10.5);
  EXPECT_DOUBLE_EQ(eth.busy_seconds(), 0.5);
  EXPECT_DOUBLE_EQ(eth.contention_seconds(), 0.0);
}

TEST(Ethernet, BackToBackTransmissionsQueue) {
  EthernetModel eth(simple_params());
  eth.transmit(0.0, 1000);  // occupies [0, 1]
  const double deliver = eth.transmit(0.2, 1000);  // must wait until 1.0
  EXPECT_DOUBLE_EQ(deliver, 2.5);  // 1.0 + 1.0 wire + 0.5 latency
  EXPECT_DOUBLE_EQ(eth.contention_seconds(), 0.8);
}

TEST(Ethernet, IdleMediumNoContention) {
  EthernetModel eth(simple_params());
  eth.transmit(0.0, 100);
  eth.transmit(5.0, 100);  // long after the first finished
  EXPECT_DOUBLE_EQ(eth.contention_seconds(), 0.0);
  EXPECT_EQ(eth.total_messages(), 2);
  EXPECT_EQ(eth.total_bytes(), 200);
}

TEST(Ethernet, OverheadBytesCount) {
  EthernetParams p = simple_params();
  p.per_message_overhead_bytes = 100;
  EthernetModel eth(p);
  eth.transmit(0.0, 0);  // pure-overhead message
  EXPECT_DOUBLE_EQ(eth.busy_seconds(), 0.1);
  EXPECT_EQ(eth.total_bytes(), 100);
}

TEST(Ethernet, DefaultsAreTenMegabit) {
  const EthernetModel eth;
  EXPECT_DOUBLE_EQ(eth.params().bandwidth_bytes_per_sec, 10e6 / 8.0);
}

TEST(Ethernet, ThroughputMatchesBandwidth) {
  // Saturating the medium: N messages of B bytes take N*B/bandwidth.
  EthernetModel eth(simple_params());
  double deliver = 0.0;
  for (int i = 0; i < 10; ++i) deliver = eth.transmit(0.0, 200);
  EXPECT_DOUBLE_EQ(eth.free_at(), 10 * 200 / 1000.0);
  EXPECT_DOUBLE_EQ(deliver, 2.0 + 0.5);
}

}  // namespace
}  // namespace now
