// Elastic worker membership and end-game speculation: a crashed rank that
// rejoins mid-run is re-admitted (full first-frame coherence restart) and
// the farm still assembles pixel-exact frames; when the pending queue runs
// dry the master clones the slowest task and keeps whichever copy commits
// first.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/par/render_farm.h"
#include "src/par/serial.h"
#include "src/scene/builtin_scenes.h"

namespace now {
namespace {

std::vector<Framebuffer> reference_frames(const AnimatedScene& scene,
                                          const TraceOptions& trace) {
  std::vector<Framebuffer> out;
  for (int f = 0; f < scene.frame_count(); ++f) {
    out.push_back(
        render_world(scene.world_at(f), scene.width(), scene.height(), trace));
  }
  return out;
}

void expect_frames_equal(const std::vector<Framebuffer>& got,
                         const std::vector<Framebuffer>& want,
                         const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t f = 0; f < got.size(); ++f) {
    ASSERT_EQ(got[f], want[f]) << label << " frame " << f;
  }
}

// -- FaultInjector::revive --------------------------------------------------

TEST(Rejoin, ReviveClearsACrashThatAlreadyFired) {
  FaultPlan plan;
  plan.events.push_back(FaultPlan::crash_at(1, 5.0));
  plan.events.push_back(FaultPlan::rejoin_at(1, 9.0));
  FaultInjector inj(plan, 3);
  EXPECT_TRUE(inj.crashed(1, 6.0));
  inj.revive(1, 9.0);
  EXPECT_FALSE(inj.crashed(1, 10.0));
  // The consumed crash event must not re-trigger at a later query.
  EXPECT_FALSE(inj.crashed(1, 100.0));
  EXPECT_EQ(inj.rejoins_triggered(), 1);
}

TEST(Rejoin, ReviveConsumesAnUnfiredCrashToo) {
  // Rejoin at T means "alive from T onward": if the crash never got a
  // chance to fire before the revive, it must not fire afterwards either.
  FaultPlan plan;
  plan.events.push_back(FaultPlan::crash_at(1, 5.0));
  plan.events.push_back(FaultPlan::rejoin_at(1, 9.0));
  FaultInjector inj(plan, 3);
  inj.revive(1, 9.0);  // nobody ever asked crashed() before the rejoin
  EXPECT_FALSE(inj.crashed(1, 10.0));
  EXPECT_EQ(inj.crashes_triggered(), 0);
}

TEST(Rejoin, PlanValidationRequiresACrashToRejoinFrom) {
  FaultPlan plan;
  plan.events.push_back(FaultPlan::rejoin_at(1, 5.0));
  EXPECT_THROW(validate_fault_plan(plan, 3), std::invalid_argument);

  // Rejoin must come strictly after an at_time crash.
  plan.events.clear();
  plan.events.push_back(FaultPlan::crash_at(1, 5.0));
  plan.events.push_back(FaultPlan::rejoin_at(1, 5.0));
  EXPECT_THROW(validate_fault_plan(plan, 3), std::invalid_argument);

  // At most one rejoin per rank.
  plan.events.clear();
  plan.events.push_back(FaultPlan::crash_at(1, 5.0));
  plan.events.push_back(FaultPlan::rejoin_at(1, 6.0));
  plan.events.push_back(FaultPlan::rejoin_at(1, 7.0));
  EXPECT_THROW(validate_fault_plan(plan, 3), std::invalid_argument);

  plan.events.clear();
  plan.events.push_back(FaultPlan::crash_at(1, 5.0));
  plan.events.push_back(FaultPlan::rejoin_at(1, 6.0));
  EXPECT_NO_THROW(validate_fault_plan(plan, 3));

  // Progress-triggered crashes have no comparable time; any rejoin works.
  plan.events.clear();
  plan.events.push_back(FaultPlan::crash_after_frames(1, 2));
  plan.events.push_back(FaultPlan::rejoin_at(1, 1.0));
  EXPECT_NO_THROW(validate_fault_plan(plan, 3));
}

// -- End-to-end: die, rejoin, complete --------------------------------------

// Without lease-based detection the master cannot reclaim the crashed
// rank's region, so the run can only complete through the rejoin path —
// completion itself proves re-admission worked. This makes the test
// timing-robust on wall-clock backends: the farm simply waits at the
// barrier until the rejoin arrives.
FarmConfig rejoin_config(FarmBackend backend) {
  FarmConfig config;
  config.backend = backend;
  config.workers = 3;
  if (backend == FarmBackend::kSim) config.worker_speeds = {1.0, 1.0, 1.0};
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = false;  // keep the dead rank's range its own
  return config;
}

TEST(Rejoin, SimCrashedWorkerRejoinsAndRunCompletes) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config = rejoin_config(FarmBackend::kSim);
  config.fault_plan.events.push_back(FaultPlan::crash_at(1, 2.0));
  config.fault_plan.events.push_back(FaultPlan::rejoin_at(1, 50.0));

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.metrics.counter("fault.crashes"), 1u);
  EXPECT_EQ(result.metrics.counter("fault.rejoins"), 1u);
  EXPECT_EQ(result.faults.deaths_detected, 0);  // no detector configured
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  // The rejoined worker re-rendered its reclaimed range from a dense
  // restart; at least one task was written off for it.
  EXPECT_GE(result.faults.tasks_reassigned, 1);
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "sim-rejoin");
}

TEST(Rejoin, SimRejoinReplaysBitIdentically) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config = rejoin_config(FarmBackend::kSim);
  config.fault_plan.events.push_back(FaultPlan::crash_at(1, 2.0));
  config.fault_plan.events.push_back(FaultPlan::rejoin_at(1, 50.0));

  const FarmResult a = render_farm(scene, config);
  const FarmResult b = render_farm(scene, config);
  EXPECT_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(a.runtime.messages, b.runtime.messages);
  expect_frames_equal(a.frames, b.frames, "rejoin-replay");
}

TEST(Rejoin, SimDeclaredDeadWorkerIsReadmittedByItsHello) {
  // With the detector on and slow survivors, the dead rank is declared dead
  // well before its rejoin fires, so the Hello arrives from a rank the
  // master has written off — the elastic-membership re-admission path.
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config = rejoin_config(FarmBackend::kSim);
  config.worker_speeds = {1.0, 0.25, 0.25};
  config.fault.enabled = true;
  config.fault.lease_base_seconds = 8.0;
  config.fault.lease_per_frame_seconds = 4.0;
  config.fault.ping_grace_seconds = 3.0;
  config.fault_plan.events.push_back(FaultPlan::crash_at(1, 2.0));
  // Without the rejoin the same run detects the death by ~t=30 and finishes
  // at ~t=53 on the two slow survivors: t=40 lands between "written off"
  // and "job done", so the Hello arrives from a rank the master believes
  // dead while there is still work left to give it.
  config.fault_plan.events.push_back(FaultPlan::rejoin_at(1, 40.0));

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.faults.deaths_detected, 1);
  EXPECT_EQ(result.faults.workers_rejoined, 1);
  EXPECT_EQ(result.metrics.counter("recovery.workers_rejoined"), 1u);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "sim-readmit");
}

TEST(Rejoin, ThreadsCrashedWorkerRejoinsAndRunCompletes) {
  const AnimatedScene scene = orbit_scene(2, 9, 40, 30);
  FarmConfig config = rejoin_config(FarmBackend::kThreads);
  // Progress-triggered crash: fires on rank 1's second result no matter how
  // fast this machine renders. The run then stalls (no detector, nobody
  // else owns rank 1's range) until the wall-clock rejoin revives it.
  // The rejoin time must leave the crash room to fire first even on a
  // loaded machine (a rejoin consumes a not-yet-fired crash): two frames
  // normally take ~10 ms, so 1 s is a wide margin, and the stall it causes
  // bounds this test's wall time.
  config.fault_plan.events.push_back(FaultPlan::crash_after_frames(1, 2));
  config.fault_plan.events.push_back(FaultPlan::rejoin_at(1, 1.0));

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.metrics.counter("fault.crashes"), 1u);
  EXPECT_EQ(result.metrics.counter("fault.rejoins"), 1u);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "threads-rejoin");
}

TEST(Rejoin, TcpCrashedWorkerReconnectsAndRunCompletes) {
  // On the TCP backend a crash severs the rank's sockets; the rejoin dials
  // a new connection into the still-open listener, re-handshakes, and the
  // re-Hello rides the fresh socket.
  const AnimatedScene scene = orbit_scene(2, 9, 40, 30);
  FarmConfig config = rejoin_config(FarmBackend::kTcp);
  // Socket setup alone can take hundreds of ms under load; 2 s keeps the
  // crash-before-rejoin ordering safe (see the threads test above).
  config.fault_plan.events.push_back(FaultPlan::crash_after_frames(1, 2));
  config.fault_plan.events.push_back(FaultPlan::rejoin_at(1, 2.0));

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.metrics.counter("fault.crashes"), 1u);
  EXPECT_EQ(result.metrics.counter("fault.rejoins"), 1u);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "tcp-rejoin");
}

TEST(Rejoin, CrashWithoutRejoinStillRequiresTheDetector) {
  const AnimatedScene scene = orbit_scene(2, 6, 32, 24);
  FarmConfig config = rejoin_config(FarmBackend::kSim);
  config.fault_plan.events.push_back(FaultPlan::crash_at(1, 2.0));
  EXPECT_THROW(render_farm(scene, config), std::invalid_argument);
}

// -- End-game speculation ---------------------------------------------------

FarmConfig speculation_config() {
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  // One straggler at 1/5 speed: after the two fast workers drain the
  // pending queue, idle (2) outnumbers active tasks (1) — the end-game.
  config.worker_speeds = {1.0, 1.0, 0.2};
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = false;  // isolate speculation from splitting
  config.speculation = true;
  return config;
}

TEST(Speculation, ClonesTheStragglerAndStaysPixelExact) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  const FarmConfig config = speculation_config();

  const FarmResult result = render_farm(scene, config);
  EXPECT_GE(result.faults.speculations_launched, 1);
  EXPECT_GE(result.faults.speculations_won, 1);
  EXPECT_EQ(result.metrics.counter("recovery.speculations_launched"),
            static_cast<std::uint64_t>(result.faults.speculations_launched));
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "speculation");
}

TEST(Speculation, BeatsTheNonSpeculativeRun) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig spec = speculation_config();
  FarmConfig base = spec;
  base.speculation = false;

  const FarmResult with = render_farm(scene, spec);
  const FarmResult without = render_farm(scene, base);
  EXPECT_GE(with.faults.speculations_launched, 1);
  EXPECT_EQ(without.faults.speculations_launched, 0);
  // Duplicating the straggler's tail onto an idle fast worker must not be
  // slower, and on this 5x speed gap should be strictly faster.
  EXPECT_LT(with.elapsed_seconds, without.elapsed_seconds);
  expect_frames_equal(with.frames, without.frames, "spec-vs-base");
}

TEST(Speculation, ReplaysBitIdentically) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  const FarmConfig config = speculation_config();
  const FarmResult a = render_farm(scene, config);
  const FarmResult b = render_farm(scene, config);
  EXPECT_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(a.faults.speculations_launched, b.faults.speculations_launched);
  EXPECT_EQ(a.faults.speculation_frames_wasted,
            b.faults.speculation_frames_wasted);
  expect_frames_equal(a.frames, b.frames, "spec-replay");
}

TEST(Speculation, WithAdaptiveSplittingStillPixelExact) {
  // Adaptive splitting steals ranges above min_split_frames; speculation
  // covers the tail below it. Together they must still commit every pixel
  // exactly once (the idempotent gate absorbs any overlap).
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config = speculation_config();
  config.partition.adaptive = true;
  config.partition.min_split_frames = 4;

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "spec-adaptive");
}

TEST(Speculation, ThreadsBackendStaysPixelExact) {
  const AnimatedScene scene = orbit_scene(2, 9, 40, 30);
  FarmConfig config;
  config.backend = FarmBackend::kThreads;
  config.workers = 3;
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = false;
  config.speculation = true;

  // Wall-clock scheduling decides whether speculation triggers; whatever
  // happens, the output must be exact and the run must terminate.
  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "threads-speculation");
}

}  // namespace
}  // namespace now
