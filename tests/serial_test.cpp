// Serial runner + cost model accounting.
#include "src/par/serial.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/scene/builtin_scenes.h"

namespace now {
namespace {

TEST(RenderSerial, FrameSecondsSumToTotal) {
  const AnimatedScene scene = orbit_scene(3, 5, 48, 36);
  const SerialResult r = render_serial(scene);
  ASSERT_EQ(r.frame_seconds.size(), 5u);
  const double sum =
      std::accumulate(r.frame_seconds.begin(), r.frame_seconds.end(), 0.0);
  EXPECT_NEAR(sum, r.virtual_seconds, 1e-9);
  EXPECT_DOUBLE_EQ(r.frame_seconds[0], r.first_frame_seconds);
}

TEST(RenderSerial, FirstFrameDominatesIncrementals) {
  const AnimatedScene scene = orbit_scene(3, 6, 64, 48);
  const SerialResult r = render_serial(scene);
  for (std::size_t f = 1; f < r.frame_seconds.size(); ++f) {
    EXPECT_LT(r.frame_seconds[f], r.first_frame_seconds) << "frame " << f;
  }
}

TEST(RenderSerial, SpeedScalesTimeNotWork) {
  const AnimatedScene scene = orbit_scene(2, 4, 48, 36);
  const SerialResult fast = render_serial(scene, {}, {}, 2.0);
  const SerialResult slow = render_serial(scene, {}, {}, 0.5);
  EXPECT_EQ(fast.stats.total_rays(), slow.stats.total_rays());
  EXPECT_NEAR(slow.virtual_seconds / fast.virtual_seconds, 4.0, 1e-9);
  ASSERT_EQ(fast.frames.size(), slow.frames.size());
  for (std::size_t f = 0; f < fast.frames.size(); ++f) {
    EXPECT_EQ(fast.frames[f], slow.frames[f]);
  }
}

TEST(RenderSerial, CoherenceReducesVirtualTime) {
  const AnimatedScene scene = orbit_scene(3, 6, 64, 48);
  const SerialResult with_fc = render_serial(scene);
  CoherenceOptions nofc;
  nofc.enabled = false;
  const SerialResult without = render_serial(scene, nofc);
  EXPECT_LT(with_fc.virtual_seconds, without.virtual_seconds);
  EXPECT_LT(with_fc.stats.total_rays(), without.stats.total_rays());
  // Identical frames either way.
  for (std::size_t f = 0; f < with_fc.frames.size(); ++f) {
    EXPECT_EQ(with_fc.frames[f], without.frames[f]);
  }
}

TEST(CostModel, MonotoneInWork) {
  const CostModel cost;
  FrameRenderResult small;
  small.stats.camera_rays = 1000;
  small.pixels_total = 100;
  FrameRenderResult big = small;
  big.stats.shadow_rays = 50000;
  big.voxels_marked = 100000;
  EXPECT_LT(cost.frame_compute_seconds(small),
            cost.frame_compute_seconds(big));
  // Setup cost is the floor.
  FrameRenderResult empty;
  EXPECT_NEAR(cost.frame_compute_seconds(empty), cost.seconds_per_frame_setup,
              1e-12);
}

TEST(FormatHms, Formats) {
  EXPECT_EQ(format_hms(0.0), "0:00");
  EXPECT_EQ(format_hms(61.0), "1:01");
  EXPECT_EQ(format_hms(3599.6), "1:00:00");  // rounds to the second
  EXPECT_EQ(format_hms(10551.0), "2:55:51");  // the paper's serial total
}

}  // namespace
}  // namespace now
