#include "src/par/partition.h"

#include <gtest/gtest.h>

namespace now {
namespace {

/// Tasks must tile image-area × frames exactly: no gaps, no overlap.
void expect_exact_tiling(const std::vector<RenderTask>& tasks, int width,
                         int height, int frames) {
  std::vector<int> coverage(
      static_cast<std::size_t>(width) * height * frames, 0);
  for (const RenderTask& task : tasks) {
    for (int f = task.first_frame; f < task.end_frame(); ++f) {
      for (int y = task.region.y0; y < task.region.y0 + task.region.height; ++y) {
        for (int x = task.region.x0; x < task.region.x0 + task.region.width; ++x) {
          ++coverage[(static_cast<std::size_t>(f) * height + y) * width + x];
        }
      }
    }
  }
  for (std::size_t i = 0; i < coverage.size(); ++i) {
    ASSERT_EQ(coverage[i], 1) << "pixel-frame " << i;
  }
}

TEST(TileRects, ExactTilesWhenDivisible) {
  const auto tiles = tile_rects(320, 240, 80);
  EXPECT_EQ(tiles.size(), 12u);  // the paper's 80x80 tiling of 320x240
  for (const PixelRect& t : tiles) {
    EXPECT_EQ(t.width, 80);
    EXPECT_EQ(t.height, 80);
  }
}

TEST(TileRects, ClipsEdgeTiles) {
  const auto tiles = tile_rects(100, 50, 40);
  EXPECT_EQ(tiles.size(), 6u);  // 3 x 2
  EXPECT_EQ(tiles[2].width, 20);    // 100 = 40+40+20
  EXPECT_EQ(tiles[5].height, 10);   // 50 = 40+10
}

TEST(SplitFrames, EvenAndUneven) {
  const auto even = split_frames(44, 4);
  ASSERT_EQ(even.size(), 4u);
  for (const auto& [first, count] : even) EXPECT_EQ(count, 11);
  const auto uneven = split_frames(45, 4);
  ASSERT_EQ(uneven.size(), 4u);
  EXPECT_EQ(uneven[0].second, 12);
  EXPECT_EQ(uneven[3].second, 11);
  int total = 0;
  for (const auto& [first, count] : uneven) total += count;
  EXPECT_EQ(total, 45);
}

TEST(SplitFrames, MoreWorkersThanFrames) {
  const auto parts = split_frames(3, 8);
  EXPECT_EQ(parts.size(), 3u);  // empty parts dropped
  for (const auto& [first, count] : parts) EXPECT_EQ(count, 1);
}

TEST(MakeInitialTasks, SequenceDivisionTiles) {
  PartitionConfig config;
  config.scheme = PartitionScheme::kSequenceDivision;
  const auto tasks = make_initial_tasks(config, 64, 48, 20, 3);
  EXPECT_EQ(tasks.size(), 3u);
  for (const RenderTask& t : tasks) {
    EXPECT_EQ(t.region, (PixelRect{0, 0, 64, 48}));
  }
  expect_exact_tiling(tasks, 64, 48, 20);
}

TEST(MakeInitialTasks, FrameDivisionTiles) {
  PartitionConfig config;
  config.scheme = PartitionScheme::kFrameDivision;
  config.block_size = 16;
  const auto tasks = make_initial_tasks(config, 64, 48, 20, 3);
  EXPECT_EQ(tasks.size(), 12u);  // 4x3 blocks
  for (const RenderTask& t : tasks) {
    EXPECT_EQ(t.first_frame, 0);
    EXPECT_EQ(t.frame_count, 20);
  }
  expect_exact_tiling(tasks, 64, 48, 20);
}

TEST(MakeInitialTasks, HybridTiles) {
  PartitionConfig config;
  config.scheme = PartitionScheme::kHybrid;
  config.block_size = 32;
  config.hybrid_frames = 6;
  const auto tasks = make_initial_tasks(config, 64, 48, 20, 3);
  // frames chunks: 6+6+6+2 = 4 chunks; blocks: 2x2 = 4 -> 16 tasks.
  EXPECT_EQ(tasks.size(), 16u);
  expect_exact_tiling(tasks, 64, 48, 20);
}

TEST(MakeInitialTasks, HybridWithSingleFrameChunks) {
  PartitionConfig config;
  config.scheme = PartitionScheme::kHybrid;
  config.block_size = 32;
  config.hybrid_frames = 1;
  const auto tasks = make_initial_tasks(config, 64, 64, 5, 2);
  EXPECT_EQ(tasks.size(), 4u * 5u);
  expect_exact_tiling(tasks, 64, 64, 5);
}

TEST(MakeInitialTasks, TaskIdsAreIndices) {
  PartitionConfig config;
  config.scheme = PartitionScheme::kFrameDivision;
  config.block_size = 32;
  const auto tasks = make_initial_tasks(config, 64, 64, 5, 2);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].task_id, static_cast<std::int32_t>(i));
  }
}

TEST(SplitFramesAtCuts, NeverCrossesACut) {
  const std::vector<int> cuts = {10, 25};
  const auto parts = split_frames_at_cuts(45, 6, cuts);
  int covered = 0;
  for (const auto& [first, count] : parts) {
    covered += count;
    for (const int cut : cuts) {
      // A range containing a cut strictly inside is illegal.
      EXPECT_FALSE(first < cut && cut < first + count)
          << "range [" << first << "," << first + count << ") crosses " << cut;
    }
  }
  EXPECT_EQ(covered, 45);
  EXPECT_GE(parts.size(), 3u);  // at least one range per shot
}

TEST(SplitFramesAtCuts, NoCutsMatchesPlainSplit) {
  EXPECT_EQ(split_frames_at_cuts(20, 4, {}), split_frames(20, 4));
}

TEST(SplitFramesAtCuts, MoreShotsThanParts) {
  // 3 shots but only 2 requested parts: each shot still gets one range.
  const auto parts = split_frames_at_cuts(30, 2, {10, 20});
  EXPECT_EQ(parts.size(), 3u);
  int covered = 0;
  for (const auto& [first, count] : parts) covered += count;
  EXPECT_EQ(covered, 30);
}

TEST(SplitFramesAtCuts, IgnoresInvalidCuts) {
  const auto parts = split_frames_at_cuts(10, 2, {0, -3, 10, 99, 5});
  int covered = 0;
  for (const auto& [first, count] : parts) covered += count;
  EXPECT_EQ(covered, 10);
  for (const auto& [first, count] : parts) {
    EXPECT_FALSE(first < 5 && 5 < first + count);
  }
}

TEST(MakeInitialTasks, SequenceDivisionRespectsCuts) {
  PartitionConfig config;
  config.scheme = PartitionScheme::kSequenceDivision;
  config.sequence_cuts = {7};
  const auto tasks = make_initial_tasks(config, 32, 32, 20, 3);
  for (const RenderTask& t : tasks) {
    EXPECT_FALSE(t.first_frame < 7 && 7 < t.end_frame())
        << "task spans the cut";
  }
  expect_exact_tiling(tasks, 32, 32, 20);
}

TEST(PartitionScheme, Names) {
  EXPECT_STREQ(to_string(PartitionScheme::kSequenceDivision),
               "sequence-division");
  EXPECT_STREQ(to_string(PartitionScheme::kFrameDivision), "frame-division");
  EXPECT_STREQ(to_string(PartitionScheme::kHybrid), "hybrid");
}

}  // namespace
}  // namespace now
