#include "src/math/transform.h"

#include <gtest/gtest.h>

#include "src/math/rng.h"

namespace now {
namespace {

void expect_near(const Vec3& a, const Vec3& b, double eps = 1e-12) {
  EXPECT_NEAR(a.x, b.x, eps);
  EXPECT_NEAR(a.y, b.y, eps);
  EXPECT_NEAR(a.z, b.z, eps);
}

TEST(Mat3, IdentityLeavesVectors) {
  const Mat3 id = Mat3::identity();
  expect_near(id * Vec3(1, 2, 3), {1, 2, 3});
  EXPECT_TRUE(id.is_rotation());
  EXPECT_DOUBLE_EQ(id.determinant(), 1.0);
}

TEST(Mat3, AxisRotationsQuarterTurn) {
  expect_near(Mat3::rotation_z(kPi / 2) * Vec3(1, 0, 0), {0, 1, 0});
  expect_near(Mat3::rotation_x(kPi / 2) * Vec3(0, 1, 0), {0, 0, 1});
  expect_near(Mat3::rotation_y(kPi / 2) * Vec3(0, 0, 1), {1, 0, 0});
}

TEST(Mat3, AxisAngleMatchesAxisRotations) {
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    const double a = rng.uniform(-3.0, 3.0);
    expect_near(Mat3::axis_angle({0, 0, 1}, a) * Vec3(1, 2, 3),
                Mat3::rotation_z(a) * Vec3(1, 2, 3), 1e-12);
    expect_near(Mat3::axis_angle({1, 0, 0}, a) * Vec3(1, 2, 3),
                Mat3::rotation_x(a) * Vec3(1, 2, 3), 1e-12);
  }
}

TEST(Mat3, RandomAxisAngleIsRotation) {
  Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    const Mat3 m = Mat3::axis_angle(rng.unit_vector(), rng.uniform(-6.0, 6.0));
    EXPECT_TRUE(m.is_rotation(1e-9)) << "iteration " << i;
  }
}

TEST(Mat3, TransposeIsInverseForRotations) {
  const Mat3 m = Mat3::axis_angle(Vec3(1, 2, 2).normalized(), 0.7);
  const Mat3 should_be_id = m * m.transposed();
  expect_near(should_be_id * Vec3(3, -1, 2), {3, -1, 2}, 1e-12);
}

TEST(Mat3, Composition) {
  const Mat3 a = Mat3::rotation_z(0.3);
  const Mat3 b = Mat3::rotation_z(0.4);
  expect_near((a * b) * Vec3(1, 0, 0), Mat3::rotation_z(0.7) * Vec3(1, 0, 0),
              1e-12);
}

TEST(Transform, TranslatePoint) {
  const Transform t = Transform::translate({1, 2, 3});
  expect_near(t.apply_point({0, 0, 0}), {1, 2, 3});
  expect_near(t.apply_direction({1, 0, 0}), {1, 0, 0});  // unaffected
}

TEST(Transform, ScaleAndRotate) {
  Transform t;
  t.scale = 2.0;
  t.rotation = Mat3::rotation_z(kPi / 2);
  expect_near(t.apply_point({1, 0, 0}), {0, 2, 0});
  expect_near(t.apply_vector({1, 0, 0}), {0, 2, 0});
  expect_near(t.apply_direction({1, 0, 0}), {0, 1, 0});  // no scale
}

TEST(Transform, ComposeAppliesRightFirst) {
  const Transform move = Transform::translate({1, 0, 0});
  const Transform rot = Transform::rotate(Mat3::rotation_z(kPi / 2));
  // rot ∘ move: translate then rotate.
  expect_near(rot.compose(move).apply_point({0, 0, 0}), {0, 1, 0});
  // move ∘ rot: rotate then translate.
  expect_near(move.compose(rot).apply_point({0, 0, 0}), {1, 0, 0});
}

TEST(Transform, InverseRoundTrips) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    Transform t;
    t.rotation = Mat3::axis_angle(rng.unit_vector(), rng.uniform(-3, 3));
    t.translation = rng.point_in_box({-5, -5, -5}, {5, 5, 5});
    t.scale = rng.uniform(0.2, 4.0);
    const Transform inv = t.inverse();
    const Vec3 p = rng.point_in_box({-5, -5, -5}, {5, 5, 5});
    expect_near(inv.apply_point(t.apply_point(p)), p, 1e-10);
    expect_near(t.apply_point(inv.apply_point(p)), p, 1e-10);
  }
}

TEST(Transform, PivotRotationFixedPoint) {
  // A rotation about a pivot leaves the pivot fixed.
  const Vec3 pivot{2, 1, 0};
  const Transform t = Transform::translate(pivot)
                          .compose(Transform::rotate(Mat3::rotation_z(0.8)))
                          .compose(Transform::translate(-pivot));
  expect_near(t.apply_point(pivot), pivot, 1e-12);
}

TEST(Transform, EqualityIsExact) {
  const Transform a = Transform::translate({1, 0, 0});
  Transform b = Transform::translate({1, 0, 0});
  EXPECT_EQ(a, b);
  b.translation.x += 1e-15;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace now
