#include "src/net/message.h"

#include <gtest/gtest.h>

#include "src/math/rng.h"

namespace now {
namespace {

TEST(Wire, ScalarRoundTrip) {
  WireWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-12345);
  w.i64(-9'876'543'210LL);
  w.f64(3.141592653589793);
  w.str("hello world");

  WireReader r(w.data());
  std::uint8_t u8v;
  std::uint32_t u32v;
  std::uint64_t u64v;
  std::int32_t i32v;
  std::int64_t i64v;
  double f64v;
  std::string s;
  ASSERT_TRUE(r.u8(&u8v));
  ASSERT_TRUE(r.u32(&u32v));
  ASSERT_TRUE(r.u64(&u64v));
  ASSERT_TRUE(r.i32(&i32v));
  ASSERT_TRUE(r.i64(&i64v));
  ASSERT_TRUE(r.f64(&f64v));
  ASSERT_TRUE(r.str(&s));
  EXPECT_TRUE(r.done());
  EXPECT_EQ(u8v, 0xAB);
  EXPECT_EQ(u32v, 0xDEADBEEFu);
  EXPECT_EQ(u64v, 0x0123456789ABCDEFULL);
  EXPECT_EQ(i32v, -12345);
  EXPECT_EQ(i64v, -9'876'543'210LL);
  EXPECT_DOUBLE_EQ(f64v, 3.141592653589793);
  EXPECT_EQ(s, "hello world");
}

TEST(Wire, SpecialDoubles) {
  WireWriter w;
  w.f64(0.0);
  w.f64(-0.0);
  w.f64(1e308);
  w.f64(-1e-308);
  WireReader r(w.data());
  double v;
  ASSERT_TRUE(r.f64(&v)); EXPECT_EQ(v, 0.0);
  ASSERT_TRUE(r.f64(&v)); EXPECT_TRUE(std::signbit(v));
  ASSERT_TRUE(r.f64(&v)); EXPECT_DOUBLE_EQ(v, 1e308);
  ASSERT_TRUE(r.f64(&v)); EXPECT_DOUBLE_EQ(v, -1e-308);
}

TEST(Wire, ReaderRejectsTruncation) {
  WireWriter w;
  w.u64(7);
  std::string data = w.take();
  data.resize(5);
  WireReader r(data);
  std::uint64_t v;
  EXPECT_FALSE(r.u64(&v));
}

TEST(Wire, StringWithEmbeddedNulls) {
  WireWriter w;
  std::string s("a\0b\0c", 5);
  w.str(s);
  WireReader r(w.data());
  std::string out;
  ASSERT_TRUE(r.str(&out));
  EXPECT_EQ(out, s);
}

TEST(Wire, StringLengthLargerThanBufferRejected) {
  WireWriter w;
  w.u32(1000);  // claims 1000 bytes follow
  w.u8('x');
  WireReader r(w.data());
  std::string out;
  EXPECT_FALSE(r.str(&out));
}

TEST(Wire, EmptyString) {
  WireWriter w;
  w.str("");
  WireReader r(w.data());
  std::string out = "junk";
  ASSERT_TRUE(r.str(&out));
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(r.done());
}

TEST(Wire, RemainingTracksPosition) {
  WireWriter w;
  w.u32(1);
  w.u32(2);
  WireReader r(w.data());
  EXPECT_EQ(r.remaining(), 8u);
  std::uint32_t v;
  r.u32(&v);
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(Wire, RandomRoundTripFuzz) {
  Rng rng(1234);
  for (int iter = 0; iter < 100; ++iter) {
    WireWriter w;
    std::vector<std::uint64_t> values;
    const int n = 1 + static_cast<int>(rng.next_below(20));
    for (int i = 0; i < n; ++i) {
      values.push_back(rng.next_u64());
      w.u64(values.back());
    }
    WireReader r(w.data());
    for (int i = 0; i < n; ++i) {
      std::uint64_t v;
      ASSERT_TRUE(r.u64(&v));
      EXPECT_EQ(v, values[static_cast<std::size_t>(i)]);
    }
    EXPECT_TRUE(r.done());
  }
}

}  // namespace
}  // namespace now
