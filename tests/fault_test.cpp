// Fault injection and recovery: the FaultInjector's interpretation of a
// FaultPlan, and end-to-end farm runs that lose workers or messages yet
// still assemble a pixel-exact animation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/par/render_farm.h"
#include "src/par/serial.h"
#include "src/scene/builtin_scenes.h"

namespace now {
namespace {

std::vector<Framebuffer> reference_frames(const AnimatedScene& scene,
                                          const TraceOptions& trace) {
  std::vector<Framebuffer> out;
  for (int f = 0; f < scene.frame_count(); ++f) {
    out.push_back(
        render_world(scene.world_at(f), scene.width(), scene.height(), trace));
  }
  return out;
}

void expect_frames_equal(const std::vector<Framebuffer>& got,
                         const std::vector<Framebuffer>& want,
                         const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t f = 0; f < got.size(); ++f) {
    ASSERT_EQ(got[f], want[f]) << label << " frame " << f;
  }
}

// -- FaultInjector unit tests ----------------------------------------------

TEST(FaultInjector, CrashAtTimeIsSticky) {
  FaultPlan plan;
  plan.events.push_back(FaultPlan::crash_at(1, 5.0));
  FaultInjector inj(plan, 3);
  EXPECT_FALSE(inj.crashed(1, 4.99));
  EXPECT_EQ(inj.crashes_triggered(), 0);
  EXPECT_TRUE(inj.crashed(1, 5.0));
  // Sticky even if asked about an earlier time afterwards.
  EXPECT_TRUE(inj.crashed(1, 0.0));
  EXPECT_FALSE(inj.crashed(2, 100.0));
  EXPECT_EQ(inj.crashes_triggered(), 1);
}

TEST(FaultInjector, CrashAfterFramesDeliversTheNthResult) {
  FaultPlan plan;
  plan.progress_tag = 5;
  plan.events.push_back(FaultPlan::crash_after_frames(1, 2));
  FaultInjector inj(plan, 3);

  // First result: alive before and after.
  EXPECT_FALSE(inj.crashed(1, 0.0));
  FaultInjector::SendFaults f = inj.on_send(1, 0, /*tag=*/5, 0.0);
  EXPECT_FALSE(f.drop);
  EXPECT_FALSE(inj.crashed(1, 1.0));

  // Second result: the send itself is not dropped (callers check crashed()
  // *before* on_send), but the rank is dead immediately after.
  f = inj.on_send(1, 0, /*tag=*/5, 1.0);
  EXPECT_FALSE(f.drop);
  EXPECT_TRUE(inj.crashed(1, 1.0));
  EXPECT_EQ(inj.crashes_triggered(), 1);

  // Non-progress tags never arm the trigger.
  FaultInjector inj2(plan, 3);
  for (int i = 0; i < 10; ++i) inj2.on_send(1, 0, /*tag=*/6, 0.0);
  EXPECT_FALSE(inj2.crashed(1, 100.0));
}

TEST(FaultInjector, DropAndDuplicateNthMatchingMessage) {
  FaultPlan plan;
  plan.events.push_back(FaultPlan::drop_nth(1, 2, /*tag=*/5));
  plan.events.push_back(FaultPlan::duplicate_nth(2, 1));
  FaultInjector inj(plan, 3);

  // Rank 1: tag filter means only tag-5 sends count.
  EXPECT_FALSE(inj.on_send(1, 0, 6, 0.0).drop);  // not counted
  EXPECT_FALSE(inj.on_send(1, 0, 5, 0.0).drop);  // 1st match
  EXPECT_TRUE(inj.on_send(1, 0, 5, 0.0).drop);   // 2nd match: dropped
  EXPECT_FALSE(inj.on_send(1, 0, 5, 0.0).drop);  // one-shot
  EXPECT_EQ(inj.messages_dropped(), 1);

  // Rank 2: any tag, first send duplicated.
  EXPECT_TRUE(inj.on_send(2, 0, 9, 0.0).duplicate);
  EXPECT_FALSE(inj.on_send(2, 0, 9, 0.0).duplicate);
  EXPECT_EQ(inj.messages_duplicated(), 1);
}

TEST(FaultInjector, DelayWindowAndSlowdownScale) {
  FaultPlan plan;
  plan.events.push_back(FaultPlan::delay_window(1, 2.0, 4.0, 0.5));
  plan.events.push_back(FaultPlan::slowdown_window(2, 0.0, 10.0, 0.25));
  FaultInjector inj(plan, 3);

  EXPECT_DOUBLE_EQ(inj.delivery_delay(1, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(inj.delivery_delay(1, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(inj.delivery_delay(1, 3.99), 0.5);
  EXPECT_DOUBLE_EQ(inj.delivery_delay(1, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(inj.delivery_delay(2, 3.0), 0.0);

  EXPECT_DOUBLE_EQ(inj.charge_scale(2, 5.0), 4.0);  // quarter speed
  EXPECT_DOUBLE_EQ(inj.charge_scale(2, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(inj.charge_scale(1, 5.0), 1.0);
}

TEST(FaultInjector, ReorderHoldsTheNthMatchingMessage) {
  FaultPlan plan;
  plan.events.push_back(FaultPlan::reorder_nth(1, 2, /*tag=*/5));
  FaultInjector inj(plan, 3);

  EXPECT_FALSE(inj.on_send(1, 0, 5, 0.0).hold);  // 1st match passes
  const FaultInjector::SendFaults f = inj.on_send(1, 0, 5, 0.0);
  EXPECT_TRUE(f.hold);  // 2nd match parked
  EXPECT_FALSE(f.drop);
  EXPECT_FALSE(inj.on_send(1, 0, 5, 0.0).hold);  // one-shot
  EXPECT_EQ(inj.messages_reordered(), 1);
  EXPECT_EQ(inj.messages_dropped(), 0);
}

TEST(FaultPlan, ProgressTagRoutesByRankClass) {
  FaultPlan plan;
  plan.progress_tag = 5;
  plan.shard_progress_tag = 14;
  plan.scheduler_progress_tag = 2;
  plan.first_shard_rank = 4;  // workers 1..3, shards 4..
  EXPECT_EQ(plan.progress_tag_for(0), 2);
  EXPECT_EQ(plan.progress_tag_for(1), 5);
  EXPECT_EQ(plan.progress_tag_for(3), 5);
  EXPECT_EQ(plan.progress_tag_for(4), 14);
  EXPECT_EQ(plan.progress_tag_for(5), 14);

  // Unsharded: every non-zero rank is a worker.
  FaultPlan flat;
  flat.progress_tag = 5;
  EXPECT_EQ(flat.progress_tag_for(0), 5);
  EXPECT_EQ(flat.progress_tag_for(2), 5);
}

TEST(FaultPlan, DescribeListsEveryEventAndTheTagWiring) {
  FaultPlan plan;
  plan.progress_tag = 5;
  plan.events.push_back(FaultPlan::crash_after_frames(1, 2));
  plan.events.push_back(FaultPlan::rejoin_after_crash(1, 3.5));
  plan.events.push_back(FaultPlan::reorder_nth(2, 4, 5));
  const std::string text = describe_fault_plan(plan);
  EXPECT_NE(text.find("3 event(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("crash rank 1 after 2 progress message(s)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("rejoin rank 1 3.500s after its crash"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("reorder rank 2 message #4 (tag 5)"), std::string::npos)
      << text;
}

TEST(FaultPlan, ValidateRejectsMalformedEvents) {
  FaultPlan plan;
  plan.events.push_back(FaultPlan::crash_at(1, 5.0));
  EXPECT_NO_THROW(validate_fault_plan(plan, 3));

  plan.events[0].after_frames = 2;  // both triggers set
  EXPECT_THROW(validate_fault_plan(plan, 3), std::invalid_argument);

  plan.events[0] = FaultPlan::crash_at(0, 5.0);  // master cannot fault
  EXPECT_THROW(validate_fault_plan(plan, 3), std::invalid_argument);

  plan.events[0] = FaultPlan::drop_nth(1, 0);
  EXPECT_THROW(validate_fault_plan(plan, 3), std::invalid_argument);

  plan.events[0] = FaultPlan::delay_window(1, 3.0, 3.0, 0.5);
  EXPECT_THROW(validate_fault_plan(plan, 3), std::invalid_argument);

  plan.events[0] = FaultPlan::slowdown_window(1, 0.0, 1.0, 0.0);
  EXPECT_THROW(validate_fault_plan(plan, 3), std::invalid_argument);
}

TEST(FaultPlan, ValidateGatesSchedulerCrashesAndRejoinPairing) {
  // Rank 0 may crash only when the caller vouches for a restart path.
  FaultPlan plan;
  plan.events.push_back(FaultPlan::crash_at(0, 5.0));
  EXPECT_THROW(validate_fault_plan(plan, 3), std::invalid_argument);
  EXPECT_NO_THROW(
      validate_fault_plan(plan, 3, /*allow_scheduler_crash=*/true));

  // A rejoin needs exactly one crash on the same rank...
  FaultPlan orphan;
  orphan.events.push_back(FaultPlan::rejoin_at(1, 5.0));
  EXPECT_THROW(validate_fault_plan(orphan, 3), std::invalid_argument);

  // ...and a time-triggered rejoin must come after a time-triggered crash.
  FaultPlan early;
  early.events.push_back(FaultPlan::crash_at(1, 5.0));
  early.events.push_back(FaultPlan::rejoin_at(1, 4.0));
  EXPECT_THROW(validate_fault_plan(early, 3), std::invalid_argument);

  // Relative rejoins are ordered by construction, whatever the trigger.
  FaultPlan relative;
  relative.events.push_back(FaultPlan::crash_after_frames(1, 2));
  relative.events.push_back(FaultPlan::rejoin_after_crash(1, 1.0));
  EXPECT_NO_THROW(validate_fault_plan(relative, 3));
}

// -- End-to-end: simulated NOW ---------------------------------------------

FarmConfig sim_fault_config() {
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds = {1.0, 1.0, 1.0};
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = true;
  config.partition.min_split_frames = 2;
  config.fault.enabled = true;
  config.fault.lease_base_seconds = 8.0;
  config.fault.lease_per_frame_seconds = 4.0;
  config.fault.ping_grace_seconds = 3.0;
  return config;
}

TEST(FaultSim, WorkerDeathIsDetectedAndRecoveredPixelExact) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config = sim_fault_config();
  config.fault_plan.events.push_back(FaultPlan::crash_after_frames(1, 2));

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.metrics.counter("fault.crashes"), 1u);
  EXPECT_EQ(result.faults.deaths_detected, 1);
  EXPECT_GE(result.faults.pings_sent, 1);
  EXPECT_GE(result.faults.tasks_reassigned, 1);
  EXPECT_GT(result.faults.frames_reassigned, 0);
  EXPECT_GT(result.faults.detection_latency_seconds, 0.0);
  // The replacement pays a dense coherence-restart first frame.
  EXPECT_GT(result.faults.restart_work_seconds, 0.0);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());

  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "one-death");
}

TEST(FaultSim, CrashAtVirtualTimeAlsoRecovers) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config = sim_fault_config();
  config.fault_plan.events.push_back(FaultPlan::crash_at(2, 6.0));

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.faults.deaths_detected, 1);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "crash-at-time");
}

TEST(FaultSim, FaultedRunReplaysBitIdentically) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config = sim_fault_config();
  config.fault_plan.events.push_back(FaultPlan::crash_after_frames(1, 2));
  config.fault_plan.events.push_back(
      FaultPlan::delay_window(2, 0.0, 5.0, 0.25));

  const FarmResult a = render_farm(scene, config);
  const FarmResult b = render_farm(scene, config);
  EXPECT_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(a.runtime.messages, b.runtime.messages);
  EXPECT_EQ(a.runtime.bytes, b.runtime.bytes);
  EXPECT_EQ(a.faults.deaths_detected, b.faults.deaths_detected);
  EXPECT_EQ(a.faults.pings_sent, b.faults.pings_sent);
  EXPECT_EQ(a.faults.tasks_reassigned, b.faults.tasks_reassigned);
  EXPECT_EQ(a.faults.detection_latency_seconds,
            b.faults.detection_latency_seconds);
  expect_frames_equal(a.frames, b.frames, "replay");
}

TEST(FaultSim, TwoDeathsStillCompleteOnTheSurvivor) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config = sim_fault_config();
  config.fault_plan.events.push_back(FaultPlan::crash_after_frames(1, 2));
  config.fault_plan.events.push_back(FaultPlan::crash_after_frames(2, 3));

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.faults.deaths_detected, 2);
  EXPECT_GE(result.faults.tasks_reassigned, 2);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "two-deaths");
}

TEST(FaultSim, AllWorkersDeadStopsWithPartialFrames) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config = sim_fault_config();
  config.worker_speeds = {1.0, 1.0};
  config.fault_plan.events.push_back(FaultPlan::crash_after_frames(1, 1));
  config.fault_plan.events.push_back(FaultPlan::crash_after_frames(2, 1));

  // Must terminate (never blocks shutdown on a dead rank) with whatever
  // frames made it.
  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.faults.deaths_detected, 2);
  EXPECT_LT(result.master.frames_completed, scene.frame_count());
}

TEST(FaultSim, LostFrameResultIsReRendered) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config = sim_fault_config();
  // Worker 1's second frame result vanishes: the gap is detected when the
  // third arrives, the remainder is written off and re-rendered.
  config.fault_plan.events.push_back(
      FaultPlan::drop_nth(1, 2, kTagFrameResult));

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.metrics.counter("fault.messages_dropped"), 1u);
  EXPECT_EQ(result.faults.deaths_detected, 0);
  EXPECT_GE(result.faults.tasks_reassigned, 1);
  EXPECT_GT(result.faults.lost_work_seconds, 0.0);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "lost-result");
}

TEST(FaultSim, LostFinalFrameResultIsReclaimedAtTaskEnd) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config = sim_fault_config();
  config.partition.adaptive = false;  // keep each task's frame range fixed
  // Sequence division, 3 workers, 12 frames: worker 1 renders frames 0-3,
  // and its 4th (final) result is dropped — no later result ever exposes
  // the gap, so the reclaim happens when its work request arrives.
  config.fault_plan.events.push_back(
      FaultPlan::drop_nth(1, 4, kTagFrameResult));

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.metrics.counter("fault.messages_dropped"), 1u);
  EXPECT_GE(result.faults.tasks_reassigned, 1);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "lost-final-result");
}

TEST(FaultSim, ReorderedFrameResultIsAbsorbedPixelExact) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config = sim_fault_config();
  // Worker 1's second result is held and delivered behind its third: the
  // master sees a gap, writes off the remainder, then discards the
  // out-of-order late arrival — and the reclaim restores every pixel.
  config.fault_plan.events.push_back(
      FaultPlan::reorder_nth(1, 2, kTagFrameResult));

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.metrics.counter("fault.messages_reordered"), 1u);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "reorder");
}

TEST(FaultSim, ReorderedRunReplaysBitIdentically) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config = sim_fault_config();
  config.fault_plan.events.push_back(
      FaultPlan::reorder_nth(1, 2, kTagFrameResult));
  config.fault_plan.events.push_back(
      FaultPlan::reorder_nth(2, 3, kTagFrameResult));

  const FarmResult a = render_farm(scene, config);
  const FarmResult b = render_farm(scene, config);
  EXPECT_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(a.runtime.messages, b.runtime.messages);
  EXPECT_EQ(a.runtime.bytes, b.runtime.bytes);
  expect_frames_equal(a.frames, b.frames, "reorder-replay");
}

TEST(FaultSim, DuplicatedFrameResultIsIgnoredExactlyOnce) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config = sim_fault_config();
  config.fault_plan.events.push_back(
      FaultPlan::duplicate_nth(2, 1, kTagFrameResult));

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.metrics.counter("fault.messages_duplicated"), 1u);
  EXPECT_GE(result.faults.results_ignored, 1);
  EXPECT_EQ(result.faults.deaths_detected, 0);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "duplicate-result");
}

TEST(FaultSim, SlowdownWindowStretchesVirtualTime) {
  const AnimatedScene scene = orbit_scene(3, 8, 48, 36);
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds = {1.0, 1.0};
  config.partition.scheme = PartitionScheme::kFrameDivision;
  config.partition.block_size = 16;
  FarmConfig slowed = config;
  slowed.fault_plan.events.push_back(
      FaultPlan::slowdown_window(1, 0.0, 1e9, 0.5));

  const FarmResult fast = render_farm(scene, config);
  const FarmResult slow = render_farm(scene, slowed);
  EXPECT_GT(slow.elapsed_seconds, fast.elapsed_seconds);
  expect_frames_equal(slow.frames, fast.frames, "slowdown");
}

TEST(FaultSim, DelaySpikeIntoAWorkerStretchesVirtualTime) {
  const AnimatedScene scene = orbit_scene(3, 8, 48, 36);
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds = {1.0, 1.0};
  config.partition.scheme = PartitionScheme::kFrameDivision;
  config.partition.block_size = 16;
  FarmConfig delayed = config;
  delayed.fault_plan.events.push_back(
      FaultPlan::delay_window(1, 0.0, 1.0, 5.0));

  const FarmResult base = render_farm(scene, config);
  const FarmResult spiky = render_farm(scene, delayed);
  EXPECT_GT(spiky.elapsed_seconds, base.elapsed_seconds);
  expect_frames_equal(spiky.frames, base.frames, "delay-spike");
}

TEST(FaultSim, FaultFreePlanAddsNoOverhead) {
  const AnimatedScene scene = orbit_scene(3, 8, 48, 36);
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds = {1.0, 0.5};
  config.partition.scheme = PartitionScheme::kFrameDivision;
  config.partition.block_size = 16;
  FarmConfig guarded = config;
  guarded.fault.enabled = true;  // leases armed, nothing ever expires

  const FarmResult off = render_farm(scene, config);
  const FarmResult on = render_farm(scene, guarded);
  EXPECT_EQ(on.faults.deaths_detected, 0);
  EXPECT_EQ(on.faults.tasks_reassigned, 0);
  EXPECT_EQ(on.master.rays_total, off.master.rays_total);
  expect_frames_equal(on.frames, off.frames, "guarded");
}

// -- End-to-end: wall-clock runtimes ---------------------------------------

FarmConfig wall_fault_config(FarmBackend backend) {
  FarmConfig config;
  config.backend = backend;
  config.workers = 3;
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = true;
  config.partition.min_split_frames = 2;
  config.fault.enabled = true;
  // Wall-clock leases: frames on these tiny scenes render in well under a
  // millisecond, so sub-second leases are generous while keeping the
  // detection wait (and the test) short.
  config.fault.lease_base_seconds = 0.4;
  config.fault.lease_per_frame_seconds = 0.05;
  config.fault.ping_grace_seconds = 0.25;
  return config;
}

TEST(FaultThreads, WorkerCrashIsSurvived) {
  const AnimatedScene scene = orbit_scene(2, 9, 40, 30);
  FarmConfig config = wall_fault_config(FarmBackend::kThreads);
  // Crash after the FIRST result: the worker still owes ≥ 2 frames of its
  // 3-frame task and can never ack a shrink, so the run cannot complete
  // without the master detecting the death and reclaiming the remainder
  // (after frame 2+, a lucky adaptive steal could make recovery unneeded).
  config.fault_plan.events.push_back(FaultPlan::crash_after_frames(1, 1));

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.faults.deaths_detected, 1);
  EXPECT_GE(result.faults.tasks_reassigned, 1);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "threads-crash");
}

TEST(FaultTcp, WorkerCrashSeversSocketsAndIsSurvived) {
  const AnimatedScene scene = orbit_scene(2, 9, 40, 30);
  FarmConfig config = wall_fault_config(FarmBackend::kTcp);
  // After the first result, for the same reason as the kThreads test.
  config.fault_plan.events.push_back(FaultPlan::crash_after_frames(1, 1));

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.faults.deaths_detected, 1);
  EXPECT_GE(result.faults.tasks_reassigned, 1);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "tcp-crash");
}

TEST(FaultThreads, DuplicatedResultIsHarmless) {
  const AnimatedScene scene = orbit_scene(2, 6, 40, 30);
  FarmConfig config = wall_fault_config(FarmBackend::kThreads);
  config.fault_plan.events.push_back(
      FaultPlan::duplicate_nth(1, 1, kTagFrameResult));

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "threads-duplicate");
}

}  // namespace
}  // namespace now
