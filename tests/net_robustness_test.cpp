// TCP wire robustness, tested without a farm: CRC-framed messages over a
// socketpair (intact, corrupted, truncated streams) and the deterministic
// connect-backoff schedule.
#include "src/net/tcp_runtime.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <string>

namespace now {
namespace {

class SocketPair {
 public:
  SocketPair() {
    int sv[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    a_ = sv[0];
    b_ = sv[1];
  }
  ~SocketPair() {
    if (a_ >= 0) ::close(a_);
    if (b_ >= 0) ::close(b_);
  }
  int a() const { return a_; }
  int b() const { return b_; }
  void close_a() {
    ::close(a_);
    a_ = -1;
  }

 private:
  int a_ = -1;
  int b_ = -1;
};

void write_raw(int fd, const std::string& bytes) {
  ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
}

TEST(ConnectBackoff, GrowsExponentiallyAndStaysUnderTheCap) {
  const TcpOptions options;  // base 0.01s, max 0.5s
  for (int rank = 1; rank <= 4; ++rank) {
    for (int attempt = 0; attempt < 12; ++attempt) {
      const double cap =
          std::min(options.connect_backoff_base_seconds * std::pow(2.0, attempt),
                   options.connect_backoff_max_seconds);
      const double delay = connect_backoff_seconds(options, rank, attempt);
      EXPECT_GE(delay, 0.5 * cap - 1e-12)
          << "rank " << rank << " attempt " << attempt;
      EXPECT_LT(delay, cap) << "rank " << rank << " attempt " << attempt;
    }
  }
}

TEST(ConnectBackoff, IsDeterministicPerRankAndDesynchronizedAcrossRanks) {
  const TcpOptions options;
  // Same (rank, attempt) -> same delay on every call and every run.
  EXPECT_EQ(connect_backoff_seconds(options, 2, 5),
            connect_backoff_seconds(options, 2, 5));
  // Different ranks jitter apart at the same attempt (the point of the
  // per-rank jitter: no thundering herd on a shared master).
  bool any_differ = false;
  for (int attempt = 0; attempt < 8 && !any_differ; ++attempt) {
    any_differ = connect_backoff_seconds(options, 1, attempt) !=
                 connect_backoff_seconds(options, 2, attempt);
  }
  EXPECT_TRUE(any_differ);
}

TEST(TcpFrame, RoundTripsOverASocket) {
  SocketPair sp;
  const Message sent{3, 7, std::string("payload with \0 embedded", 23)};
  ASSERT_TRUE(tcp_write_message(sp.a(), sent));
  Message got;
  ASSERT_EQ(tcp_read_frame(sp.b(), &got, nullptr), TcpReadStatus::kOk);
  EXPECT_EQ(got.source, sent.source);
  EXPECT_EQ(got.tag, sent.tag);
  EXPECT_EQ(got.payload, sent.payload);

  // Empty payloads frame fine too.
  ASSERT_TRUE(tcp_write_message(sp.a(), Message{1, 9, ""}));
  ASSERT_EQ(tcp_read_frame(sp.b(), &got, nullptr), TcpReadStatus::kOk);
  EXPECT_EQ(got.source, 1);
  EXPECT_EQ(got.tag, 9);
  EXPECT_TRUE(got.payload.empty());
}

TEST(TcpFrame, CorruptPayloadIsDetectedAndTheStreamStaysAligned) {
  SocketPair sp;
  std::string frame = tcp_encode_frame(Message{1, 5, "hello, farm"});
  frame.back() ^= 0x40;  // flip a payload bit after the CRC was computed
  write_raw(sp.a(), frame);
  const Message good{2, 6, "still fine"};
  ASSERT_TRUE(tcp_write_message(sp.a(), good));

  // The corrupt frame is reported, not delivered — and the next frame on
  // the same stream parses cleanly (framing never loses sync).
  Message got;
  ASSERT_EQ(tcp_read_frame(sp.b(), &got, nullptr), TcpReadStatus::kCorrupt);
  ASSERT_EQ(tcp_read_frame(sp.b(), &got, nullptr), TcpReadStatus::kOk);
  EXPECT_EQ(got.source, good.source);
  EXPECT_EQ(got.tag, good.tag);
  EXPECT_EQ(got.payload, good.payload);
}

TEST(TcpFrame, CorruptCrcFieldIsDetected) {
  SocketPair sp;
  std::string frame = tcp_encode_frame(Message{1, 5, "checksummed"});
  // Byte 12 is the first CRC byte ([i32 source][i32 tag][u32 len][u32 crc]).
  frame[12] ^= 0x01;
  write_raw(sp.a(), frame);
  Message got;
  EXPECT_EQ(tcp_read_frame(sp.b(), &got, nullptr), TcpReadStatus::kCorrupt);
}

TEST(TcpFrame, ReadMessageSkipsCorruptFramesSilently) {
  SocketPair sp;
  std::string bad = tcp_encode_frame(Message{1, 5, "garbled"});
  bad.back() ^= 0xFF;
  write_raw(sp.a(), bad);
  const Message good{4, 8, "delivered"};
  ASSERT_TRUE(tcp_write_message(sp.a(), good));

  Message got;
  ASSERT_TRUE(tcp_read_message(sp.b(), &got));
  EXPECT_EQ(got.tag, good.tag);
  EXPECT_EQ(got.payload, good.payload);
}

TEST(TcpFrame, EofMidFrameIsClosedNotCorrupt) {
  SocketPair sp;
  const std::string frame = tcp_encode_frame(Message{1, 5, "cut short"});
  write_raw(sp.a(), frame.substr(0, frame.size() / 2));
  sp.close_a();
  Message got;
  EXPECT_EQ(tcp_read_frame(sp.b(), &got, nullptr), TcpReadStatus::kClosed);
}

TEST(TcpFrame, CleanEofIsClosed) {
  SocketPair sp;
  sp.close_a();
  Message got;
  EXPECT_EQ(tcp_read_frame(sp.b(), &got, nullptr), TcpReadStatus::kClosed);
  EXPECT_FALSE(tcp_read_message(sp.b(), &got));
}

TEST(TcpFrame, AbsurdLengthFieldIsTreatedAsClosed) {
  SocketPair sp;
  // Hand-craft a header claiming a ~2 GB payload; the reader must refuse to
  // allocate it and treat the stream as dead rather than OOM.
  WireWriter w;
  w.i32(1);
  w.i32(5);
  w.u32(0x7FFFFFFFu);
  w.u32(0);
  write_raw(sp.a(), w.take());
  Message got;
  EXPECT_EQ(tcp_read_frame(sp.b(), &got, nullptr), TcpReadStatus::kClosed);
}

}  // namespace
}  // namespace now
