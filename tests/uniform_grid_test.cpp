// UniformGridAccelerator must agree exactly with the brute-force reference.
#include "src/trace/uniform_grid.h"

#include <gtest/gtest.h>

#include "src/geom/box.h"
#include "src/geom/cylinder.h"
#include "src/geom/plane.h"
#include "src/geom/sphere.h"
#include "src/math/rng.h"
#include "src/scene/builtin_scenes.h"
#include "src/trace/render.h"

namespace now {
namespace {

World random_world(std::uint64_t seed, int objects, bool with_plane) {
  Rng rng(seed);
  World world;
  const int mat = world.add_material(Material::matte(Color::gray(0.5)));
  for (int i = 0; i < objects; ++i) {
    const Vec3 pos = rng.point_in_box({-3, -3, -3}, {3, 3, 3});
    switch (rng.next_below(3)) {
      case 0:
        world.add_object(
            std::make_unique<Sphere>(pos, rng.uniform(0.2, 0.8)), mat);
        break;
      case 1:
        world.add_object(
            std::make_unique<Box>(pos,
                                  rng.point_in_box({0.1, 0.1, 0.1}, {0.7, 0.7, 0.7}),
                                  Mat3::rotation_y(rng.uniform(0, kTwoPi))),
            mat);
        break;
      default:
        world.add_object(
            std::make_unique<Cylinder>(
                pos, pos + rng.unit_vector() * rng.uniform(0.3, 1.5),
                rng.uniform(0.1, 0.4)),
            mat);
    }
  }
  if (with_plane) {
    world.add_object(std::make_unique<Plane>(Vec3{0, 1, 0}, -3.5), mat);
  }
  return world;
}

class GridVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(GridVsBruteForce, ClosestHitsAgree) {
  const int seed = GetParam();
  const World world = random_world(seed, 12, seed % 2 == 0);
  const BruteForceAccelerator brute(world);
  const UniformGridAccelerator grid(world);
  Rng rng(seed * 77 + 1);
  for (int i = 0; i < 500; ++i) {
    const Ray ray{rng.point_in_box({-5, -5, -5}, {5, 5, 5}),
                  rng.unit_vector()};
    Hit hb, hg;
    const bool fb = brute.closest_hit(ray, 1e-9, kRayInfinity, &hb);
    const bool fg = grid.closest_hit(ray, 1e-9, kRayInfinity, &hg);
    ASSERT_EQ(fb, fg) << "seed " << seed << " ray " << i;
    if (fb) {
      ASSERT_NEAR(hb.t, hg.t, 1e-9) << "seed " << seed << " ray " << i;
      ASSERT_EQ(hb.object_id, hg.object_id) << "seed " << seed << " ray " << i;
    }
  }
}

TEST_P(GridVsBruteForce, AnyHitsAgreeOnBlocked) {
  const int seed = GetParam();
  const World world = random_world(seed, 10, false);
  const BruteForceAccelerator brute(world);
  const UniformGridAccelerator grid(world);
  Rng rng(seed * 31 + 5);
  for (int i = 0; i < 500; ++i) {
    const Ray ray{rng.point_in_box({-5, -5, -5}, {5, 5, 5}),
                  rng.unit_vector()};
    const double t_max = rng.uniform(0.5, 10.0);
    // The particular blocker may differ; blocked-ness must not.
    ASSERT_EQ(brute.any_hit(ray, 1e-9, t_max, nullptr),
              grid.any_hit(ray, 1e-9, t_max, nullptr))
        << "seed " << seed << " ray " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridVsBruteForce, ::testing::Range(1, 9));

TEST(UniformGrid, RenderedImageMatchesBruteForce) {
  const AnimatedScene scene = orbit_scene(5, 1, 48, 36);
  const World world = scene.world_at(0);
  const BruteForceAccelerator brute(world);
  const UniformGridAccelerator grid(world);
  Tracer t1(world, brute);
  Tracer t2(world, grid);
  Framebuffer f1(48, 36), f2(48, 36);
  render_frame(&t1, &f1);
  render_frame(&t2, &f2);
  EXPECT_EQ(f1, f2);
  // Identical shading implies identical ray trees.
  EXPECT_EQ(t1.stats().total_rays(), t2.stats().total_rays());
}

TEST(UniformGrid, ExplicitGridResolutionsAllAgree) {
  const World world = random_world(3, 10, true);
  const BruteForceAccelerator brute(world);
  Rng rng(404);
  for (const int n : {1, 2, 5, 17}) {
    const VoxelGrid vg(world.bounded_extent().padded(0.1), n, n, n);
    const UniformGridAccelerator grid(world, vg);
    for (int i = 0; i < 200; ++i) {
      const Ray ray{rng.point_in_box({-5, -5, -5}, {5, 5, 5}),
                    rng.unit_vector()};
      Hit hb, hg;
      const bool fb = brute.closest_hit(ray, 1e-9, kRayInfinity, &hb);
      const bool fg = grid.closest_hit(ray, 1e-9, kRayInfinity, &hg);
      ASSERT_EQ(fb, fg) << "n=" << n << " ray " << i;
      if (fb) {
        ASSERT_NEAR(hb.t, hg.t, 1e-9) << "n=" << n << " ray " << i;
      }
    }
  }
}

TEST(UniformGrid, EmptyWorld) {
  World world;
  world.add_material(Material::matte(Color::white()));
  const UniformGridAccelerator grid(world);
  Hit hit;
  EXPECT_FALSE(grid.closest_hit({{0, 0, 0}, {1, 0, 0}}, 1e-9, 1e9, &hit));
  EXPECT_FALSE(grid.any_hit({{0, 0, 0}, {1, 0, 0}}, 1e-9, 1e9, nullptr));
}

TEST(UniformGrid, PlaneOnlyWorld) {
  World world;
  const int mat = world.add_material(Material::matte(Color::white()));
  world.add_object(std::make_unique<Plane>(Vec3{0, 1, 0}, 0.0), mat);
  const UniformGridAccelerator grid(world);
  Hit hit;
  ASSERT_TRUE(grid.closest_hit({{0, 2, 0}, {0, -1, 0}}, 1e-9, 1e9, &hit));
  EXPECT_NEAR(hit.t, 2.0, 1e-12);
}

TEST(UniformGrid, CellEntriesReflectFootprints) {
  World world;
  const int mat = world.add_material(Material::matte(Color::white()));
  world.add_object(std::make_unique<Sphere>(Vec3{0, 0, 0}, 0.4), mat);
  const VoxelGrid vg({{-1, -1, -1}, {1, 1, 1}}, 2, 2, 2);
  const UniformGridAccelerator grid(world, vg);
  // A 0.4-radius sphere at the center of a 2x2x2 grid touches all 8 cells.
  EXPECT_EQ(grid.total_cell_entries(), 8);
}

}  // namespace
}  // namespace now
