// Intra-worker parallelism: a CoherentRenderer with threads = N must produce
// byte-identical output to threads = 1 — the framebuffer, every
// FrameRenderResult counter, and the coherence grid's mark statistics (the
// `chunks` wall-clock metadata is explicitly excluded). Also covers the
// ThreadPool primitive itself.
#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/coherent_renderer.h"
#include "src/core/thread_pool.h"
#include "src/geom/plane.h"
#include "src/geom/sphere.h"
#include "src/scene/builtin_scenes.h"

namespace now {
namespace {

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(resolve_thread_count(1), 1);
  EXPECT_EQ(resolve_thread_count(4), 4);
  EXPECT_GE(resolve_thread_count(0), 1);  // hardware concurrency, at least 1
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  for (const int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    std::vector<std::atomic<int>> hits(97);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(97, [&](int task, int worker) {
      ASSERT_GE(worker, 0);
      ASSERT_LT(worker, threads);
      hits[static_cast<std::size_t>(task)].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int job = 0; job < 5; ++job) {
    pool.parallel_for(10, [&](int, int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   8,
                   [&](int task, int) {
                     if (task == 3) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](int, int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 4);
}

TEST(ThreadPool, ZeroTasksIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](int, int) { FAIL() << "must not be called"; });
}

// -------------------------------------------------------------------------
// Renderer determinism: threads = N vs threads = 1.

struct FrameObservation {
  Framebuffer fb;
  FrameRenderResult result;
  CoherenceGridStats grid;
};

/// Render every frame of `scene` with the given options and capture
/// everything the determinism guarantee covers.
std::vector<FrameObservation> observe(const AnimatedScene& scene,
                                      const PixelRect& region,
                                      CoherenceOptions options, int threads) {
  options.threads = threads;
  CoherentRenderer renderer(scene, region, options);
  EXPECT_EQ(renderer.thread_count(), threads);
  Framebuffer fb(scene.width(), scene.height(), Rgb8{9, 9, 9});
  std::vector<FrameObservation> out;
  for (int frame = 0; frame < scene.frame_count(); ++frame) {
    FrameRenderResult r = renderer.render_frame(frame, &fb);
    out.push_back({fb, std::move(r), renderer.coherence_grid().stats()});
  }
  return out;
}

void expect_identical_runs(const AnimatedScene& scene, const PixelRect& region,
                           const CoherenceOptions& options, int threads) {
  const std::vector<FrameObservation> seq = observe(scene, region, options, 1);
  const std::vector<FrameObservation> par =
      observe(scene, region, options, threads);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t f = 0; f < seq.size(); ++f) {
    const FrameObservation& a = seq[f];
    const FrameObservation& b = par[f];
    SCOPED_TRACE("frame " + std::to_string(f) + ", threads " +
                 std::to_string(threads));
    EXPECT_EQ(a.fb, b.fb);
    EXPECT_EQ(a.result.pixels_recomputed, b.result.pixels_recomputed);
    EXPECT_EQ(a.result.pixels_total, b.result.pixels_total);
    EXPECT_EQ(a.result.dirty_voxels, b.result.dirty_voxels);
    EXPECT_EQ(a.result.voxels_marked, b.result.voxels_marked);
    EXPECT_EQ(a.result.full_render, b.result.full_render);
    EXPECT_EQ(a.result.stats.camera_rays, b.result.stats.camera_rays);
    EXPECT_EQ(a.result.stats.reflection_rays, b.result.stats.reflection_rays);
    EXPECT_EQ(a.result.stats.refraction_rays, b.result.stats.refraction_rays);
    EXPECT_EQ(a.result.stats.shadow_rays, b.result.stats.shadow_rays);
    EXPECT_EQ(a.result.stats.pixels_shaded, b.result.stats.pixels_shaded);
    EXPECT_TRUE(a.result.recomputed == b.result.recomputed);
    EXPECT_EQ(a.grid.live_marks, b.grid.live_marks);
    EXPECT_EQ(a.grid.total_marks, b.grid.total_marks);
    EXPECT_EQ(a.grid.compactions, b.grid.compactions);
    // Sequential renders carry no chunk timings; threaded full-region
    // renders must cover the region's row bands exactly once.
    EXPECT_TRUE(a.result.chunks.empty());
    if (threads > 1) {
      int rows = 0;
      for (const ChunkTiming& c : b.result.chunks) rows += c.rows;
      EXPECT_EQ(rows, region.height);
    }
  }
}

TEST(ThreadedRenderer, OrbitSceneMatchesSequential) {
  const AnimatedScene scene = orbit_scene(4, 5, 64, 48);
  for (const int threads : {2, 3, 4}) {
    expect_identical_runs(scene, {0, 0, 64, 48}, {}, threads);
  }
}

TEST(ThreadedRenderer, CradleSceneMatchesSequential) {
  CradleParams params;
  params.frames = 4;
  params.width = 64;
  params.height = 48;
  const AnimatedScene scene = newton_cradle_scene(params);
  expect_identical_runs(scene, {0, 0, 64, 48}, {}, 4);
}

TEST(ThreadedRenderer, RegionRestrictedMatchesSequential) {
  // An off-origin region whose height is not a multiple of the chunk size.
  const AnimatedScene scene = orbit_scene(3, 4, 64, 48);
  expect_identical_runs(scene, {16, 9, 32, 27}, {}, 3);
}

TEST(ThreadedRenderer, DisabledCoherenceMatchesSequential) {
  const AnimatedScene scene = orbit_scene(3, 3, 48, 36);
  CoherenceOptions options;
  options.enabled = false;
  expect_identical_runs(scene, {0, 0, 48, 36}, options, 4);
}

TEST(ThreadedRenderer, BlockGranularityMatchesSequential) {
  const AnimatedScene scene = orbit_scene(3, 4, 64, 48);
  CoherenceOptions options;
  options.block_size = 8;
  expect_identical_runs(scene, {0, 0, 64, 48}, options, 2);
}

TEST(ThreadedRenderer, CameraCutMatchesSequential) {
  const AnimatedScene scene = two_shot_scene(6, 3);
  expect_identical_runs(
      scene, {0, 0, scene.width(), scene.height()}, {}, 4);
}

/// Orbit scene plus a plane that moves every frame: find_dirty_voxels
/// reports all_dirty on every transition, exercising the full-invalidation
/// incremental path.
AnimatedScene all_dirty_scene(int frames) {
  AnimatedScene scene = orbit_scene(2, frames, 48, 36);
  Spline drift;
  drift.add_key(0.0, {0, 0, 0});
  drift.add_key(frames / 15.0, {0, 0.5, 0});
  const int mat = scene.add_material(Material::matte(Color{0.4, 0.4, 0.5}));
  scene.add_object("ceiling", std::make_unique<Plane>(Vec3{0, -1, 0}, -8.0),
                   mat, std::make_unique<KeyframeAnimator>(drift));
  return scene;
}

TEST(ThreadedRenderer, AllDirtyFramesMatchSequential) {
  expect_identical_runs(all_dirty_scene(4), {0, 0, 48, 36}, {}, 4);
}

// Regression for the stale-mark leak: the all_dirty incremental path must
// drop every stored mark before re-marking, leaving the grid with exactly
// the marks a from-scratch render of the same frame would store.
TEST(CoherentRenderer, AllDirtyDropsStaleMarks) {
  const AnimatedScene scene = all_dirty_scene(4);
  const PixelRect region{0, 0, 48, 36};

  CoherentRenderer incremental(scene, region);
  Framebuffer fb(48, 36);
  FrameRenderResult last;
  for (int frame = 0; frame < scene.frame_count(); ++frame) {
    last = incremental.render_frame(frame, &fb);
  }
  ASSERT_FALSE(last.full_render);
  ASSERT_EQ(last.dirty_voxels,
            incremental.coherence_grid().grid().cell_count());

  // A fresh renderer that only ever saw the final frame stores the marks of
  // that frame alone; the incremental renderer must not have accumulated
  // more live marks than that.
  CoherentRenderer fresh(scene, region);
  Framebuffer fresh_fb(48, 36);
  fresh.render_frame(scene.frame_count() - 1, &fresh_fb);
  EXPECT_EQ(incremental.coherence_grid().stats().live_marks,
            fresh.coherence_grid().stats().live_marks);
  EXPECT_EQ(fb, fresh_fb);
}

}  // namespace
}  // namespace now
