// Delta frame transport, end to end: raw and delta codecs must assemble
// byte-identical animations on every backend — pipelined or inline, under
// message drops, duplicated deliveries, and mid-sequence worker death (which
// forces the replacement task to restart from a dense key frame).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/par/render_farm.h"
#include "src/par/serial.h"
#include "src/scene/builtin_scenes.h"

namespace now {
namespace {

std::vector<Framebuffer> reference_frames(const AnimatedScene& scene,
                                          const TraceOptions& trace) {
  std::vector<Framebuffer> out;
  for (int f = 0; f < scene.frame_count(); ++f) {
    out.push_back(
        render_world(scene.world_at(f), scene.width(), scene.height(), trace));
  }
  return out;
}

void expect_frames_equal(const std::vector<Framebuffer>& got,
                         const std::vector<Framebuffer>& want,
                         const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t f = 0; f < got.size(); ++f) {
    ASSERT_EQ(got[f], want[f]) << label << " frame " << f;
  }
}

FarmConfig base_config(FarmBackend backend, FrameCodec codec) {
  FarmConfig config;
  config.backend = backend;
  config.workers = 3;
  config.frame_codec = codec;
  if (backend != FarmBackend::kSim) config.coherence.threads = 1;
  return config;
}

TEST(DeltaTransport, SimRawAndDeltaAssembleIdenticalFramesAndDeltaIsSmaller) {
  // Low motion: one small orbiting sphere leaves most of each frame
  // untouched, the regime the delta codec exists for.
  const AnimatedScene scene = orbit_scene(2, 10, 64, 48);
  const auto ref = reference_frames(scene, TraceOptions{});

  FarmResult raw = render_farm(scene, base_config(FarmBackend::kSim,
                                                  FrameCodec::kRaw));
  FarmResult delta = render_farm(scene, base_config(FarmBackend::kSim,
                                                    FrameCodec::kDelta));
  expect_frames_equal(raw.frames, ref, "sim-raw");
  expect_frames_equal(delta.frames, ref, "sim-delta");

  const std::uint64_t raw_wire = raw.metrics.counter("net.frame_bytes_wire");
  const std::uint64_t delta_wire =
      delta.metrics.counter("net.frame_bytes_wire");
  ASSERT_GT(raw_wire, 0u);
  EXPECT_LT(delta_wire, raw_wire);
  EXPECT_GT(delta.metrics.counter("net.frame_bytes_raw"), 0u);
  EXPECT_GT(delta.metrics.counter("net.key_frames"), 0u);
  EXPECT_GT(delta.metrics.counter("net.delta_frames"), 0u);
  EXPECT_EQ(delta.metrics.counter("net.frame_decode_failures"), 0u);
  // The sim charges the Ethernet by payload size: smaller frames, less
  // virtual time on the shared medium.
  EXPECT_LE(delta.metrics.gauge("sim.ethernet_busy_seconds"),
            raw.metrics.gauge("sim.ethernet_busy_seconds"));
}

TEST(DeltaTransport, PipelinedMatchesSequentialOnWallClockBackends) {
  const AnimatedScene scene = orbit_scene(3, 8, 48, 36);
  const auto ref = reference_frames(scene, TraceOptions{});
  for (const FarmBackend backend :
       {FarmBackend::kThreads, FarmBackend::kTcp}) {
    for (const FrameCodec codec : {FrameCodec::kRaw, FrameCodec::kDelta}) {
      FarmConfig piped = base_config(backend, codec);
      piped.pipeline = true;
      FarmConfig inline_send = base_config(backend, codec);
      inline_send.pipeline = false;
      const std::string label = std::string(to_string(backend)) + "/" +
                                to_string(codec);
      expect_frames_equal(render_farm(scene, piped).frames, ref,
                          label + "/pipelined");
      expect_frames_equal(render_farm(scene, inline_send).frames, ref,
                          label + "/inline");
    }
  }
}

TEST(DeltaTransport, SurvivesDroppedAndDuplicatedResultsOnSim) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  const auto ref = reference_frames(scene, TraceOptions{});
  for (const FrameCodec codec : {FrameCodec::kRaw, FrameCodec::kDelta}) {
    FarmConfig config = base_config(FarmBackend::kSim, codec);
    // A dropped frame result breaks the sender's delta chain: the master
    // must detect the gap at the next result, write the task off, and
    // restart the remainder from a dense key frame elsewhere.
    config.fault_plan.events.push_back(
        FaultPlan::drop_nth(1, 2, kTagFrameResult));
    config.fault_plan.events.push_back(
        FaultPlan::duplicate_nth(2, 3, kTagFrameResult));
    const FarmResult result = render_farm(scene, config);
    expect_frames_equal(result.frames, ref,
                        std::string("faults/") + to_string(codec));
    EXPECT_EQ(result.metrics.counter("net.frame_decode_failures"), 0u);
  }
}

TEST(DeltaTransport, WorkerDeathMidSequenceForcesKeyFrameRestart) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  const auto ref = reference_frames(scene, TraceOptions{});
  FarmConfig config = base_config(FarmBackend::kSim, FrameCodec::kDelta);
  config.worker_speeds = {1.0, 1.0, 1.0};
  config.fault.enabled = true;
  config.fault.lease_base_seconds = 4.0;
  config.fault.lease_per_frame_seconds = 2.0;
  config.fault.ping_grace_seconds = 2.0;
  // Dies after two committed frames: mid-task, mid-delta-chain. The
  // reclaimed remainder must re-enter as a fresh task whose first frame is
  // a dense key frame, or the master would rebuild on a stale predecessor.
  config.fault_plan.events.push_back(FaultPlan::crash_after_frames(1, 2));

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.faults.deaths_detected, 1);
  expect_frames_equal(result.frames, ref, "death-restart");
  EXPECT_EQ(result.metrics.counter("net.frame_decode_failures"), 0u);
}

TEST(DeltaTransport, PipelinedWallClockRunSurvivesWorkerDeathAndRejoin) {
  const AnimatedScene scene = orbit_scene(2, 9, 40, 30);
  const auto ref = reference_frames(scene, TraceOptions{});
  for (const FarmBackend backend :
       {FarmBackend::kThreads, FarmBackend::kTcp}) {
    FarmConfig config = base_config(backend, FrameCodec::kDelta);
    config.pipeline = true;
    // The revived process must discard its dead predecessor's queued frames
    // and re-Hello; its next task starts from a key frame.
    config.fault_plan.events.push_back(FaultPlan::crash_after_frames(1, 2));
    config.fault_plan.events.push_back(
        FaultPlan::rejoin_at(1, backend == FarmBackend::kTcp ? 2.0 : 1.0));
    const FarmResult result = render_farm(scene, config);
    expect_frames_equal(result.frames, ref,
                        std::string("rejoin/") + to_string(backend));
    EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  }
}

TEST(DeltaTransport, CameraCutProducesKeyFramesNotCorruption) {
  // A camera cut forces a coherence restart mid-task: the worker's next
  // frame is a full render and must travel as a dense key frame.
  const AnimatedScene scene = two_shot_scene(10, 5);
  const auto ref = reference_frames(scene, TraceOptions{});
  FarmConfig config = base_config(FarmBackend::kSim, FrameCodec::kDelta);
  config.partition.scheme = PartitionScheme::kFrameDivision;
  const FarmResult result = render_farm(scene, config);
  expect_frames_equal(result.frames, ref, "camera-cut");
  // One key frame per task start plus one per cut crossing, at minimum.
  EXPECT_GT(result.metrics.counter("net.key_frames"), 0u);
  EXPECT_EQ(result.metrics.counter("net.frame_decode_failures"), 0u);
}

}  // namespace
}  // namespace now
