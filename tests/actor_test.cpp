// Protocol-level unit tests for RenderMaster and RenderWorker: drive the
// actors directly through a recording Context — no runtime, no threads —
// and check the message-by-message behavior, including the shrink
// handshake's race handling.
#include <gtest/gtest.h>

#include <deque>

#include "src/par/master.h"
#include "src/par/worker.h"
#include "src/scene/builtin_scenes.h"

namespace now {
namespace {

struct SentMessage {
  int dest;
  int tag;
  std::string payload;
};

class RecordingContext final : public Context {
 public:
  RecordingContext(int rank, int world_size)
      : rank_(rank), world_size_(world_size) {}

  int rank() const override { return rank_; }
  int world_size() const override { return world_size_; }
  void send(int dest, int tag, std::string payload) override {
    sent.push_back({dest, tag, std::move(payload)});
  }
  void charge(double seconds) override { charged += seconds; }
  double now() const override { return charged; }
  void stop() override { stopped = true; }

  /// Pop the first sent message matching `tag` (and optionally dest).
  SentMessage take(int tag, int dest = -1) {
    for (std::size_t i = 0; i < sent.size(); ++i) {
      if (sent[i].tag == tag && (dest < 0 || sent[i].dest == dest)) {
        SentMessage m = sent[i];
        sent.erase(sent.begin() + static_cast<std::ptrdiff_t>(i));
        return m;
      }
    }
    ADD_FAILURE() << "no message with tag " << tag;
    return {};
  }

  bool has(int tag) const {
    for (const auto& m : sent) {
      if (m.tag == tag) return true;
    }
    return false;
  }

  std::vector<SentMessage> sent;
  double charged = 0.0;
  bool stopped = false;

 private:
  int rank_;
  int world_size_;
};

Message msg_from(int source, int tag, std::string payload = {}) {
  return Message{source, tag, std::move(payload)};
}

// ---------------------------------------------------------------- worker --

class WorkerProtocol : public ::testing::Test {
 protected:
  WorkerProtocol()
      : scene_(orbit_scene(2, 8, 32, 24)),
        worker_(scene_, WorkerConfig{}),
        ctx_(1, 2) {}

  /// Deliver a task and run the continuation loop to completion, returning
  /// the frames reported.
  std::vector<int> run_task(const RenderTask& task) {
    worker_.on_message(ctx_, msg_from(0, kTagTask, encode_task(task)));
    return drain_continuations();
  }

  std::vector<int> drain_continuations() {
    std::vector<int> frames;
    for (int guard = 0; guard < 1000; ++guard) {
      // Find a self-sent continuation.
      bool found = false;
      for (std::size_t i = 0; i < ctx_.sent.size(); ++i) {
        if (ctx_.sent[i].tag == kTagContinue) {
          ctx_.sent.erase(ctx_.sent.begin() + static_cast<std::ptrdiff_t>(i));
          found = true;
          break;
        }
      }
      if (!found) break;
      worker_.on_message(ctx_, msg_from(1, kTagContinue));
      // Record any frame results produced.
      for (std::size_t i = 0; i < ctx_.sent.size();) {
        if (ctx_.sent[i].tag == kTagFrameResult) {
          FrameResult r;
          EXPECT_TRUE(decode_frame_result(&r, ctx_.sent[i].payload));
          frames.push_back(r.frame);
          ctx_.sent.erase(ctx_.sent.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
    }
    return frames;
  }

  AnimatedScene scene_;
  RenderWorker worker_;
  RecordingContext ctx_;
};

TEST_F(WorkerProtocol, HelloOnStart) {
  worker_.on_start(ctx_);
  const SentMessage hello = ctx_.take(kTagHello, 0);
  EXPECT_TRUE(hello.payload.empty());
}

TEST_F(WorkerProtocol, RendersAssignedFramesInOrder) {
  const std::vector<int> frames =
      run_task({0, {0, 0, 32, 24}, 2, 3});
  EXPECT_EQ(frames, (std::vector<int>{2, 3, 4}));
  // Task complete: exactly one request back to the master.
  ctx_.take(kTagRequest, 0);
  EXPECT_FALSE(ctx_.has(kTagContinue));
  EXPECT_EQ(worker_.report().frames_rendered, 3);
  EXPECT_EQ(worker_.report().tasks_completed, 1);
  EXPECT_GT(ctx_.charged, 0.0);
}

TEST_F(WorkerProtocol, FirstFrameDenseRestSparse) {
  worker_.on_message(
      ctx_, msg_from(0, kTagTask, encode_task({0, {0, 0, 32, 24}, 0, 3})));
  std::vector<FrameResult> results;
  for (int guard = 0; guard < 100 && ctx_.has(kTagContinue); ++guard) {
    ctx_.take(kTagContinue);
    worker_.on_message(ctx_, msg_from(1, kTagContinue));
    while (ctx_.has(kTagFrameResult)) {
      FrameResult r;
      ASSERT_TRUE(
          decode_frame_result(&r, ctx_.take(kTagFrameResult).payload));
      results.push_back(r);
    }
  }
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].payload.dense);
  EXPECT_EQ(results[0].full_render, 1);
  EXPECT_FALSE(results[1].payload.dense);
  EXPECT_EQ(results[1].full_render, 0);
}

TEST_F(WorkerProtocol, ShrinkReducesWork) {
  worker_.on_message(
      ctx_, msg_from(0, kTagTask, encode_task({7, {0, 0, 32, 24}, 0, 8})));
  // Render two frames, then shrink to end at frame 4.
  ctx_.take(kTagContinue);
  worker_.on_message(ctx_, msg_from(1, kTagContinue));
  ctx_.take(kTagContinue);
  worker_.on_message(ctx_, msg_from(1, kTagContinue));
  // Discard the results of the two frames already rendered so the drain
  // below only sees post-shrink work.
  while (ctx_.has(kTagFrameResult)) ctx_.take(kTagFrameResult);
  worker_.on_message(ctx_, msg_from(0, kTagShrink,
                                    encode_shrink({7, 4})));
  ShrinkAck ack;
  ASSERT_TRUE(decode_shrink_ack(&ack, ctx_.take(kTagShrinkAck).payload));
  EXPECT_EQ(ack.task_id, 7);
  EXPECT_EQ(ack.honored_end_frame, 4);
  // Continue to completion: frames 2 and 3 only.
  const std::vector<int> rest = drain_continuations();
  EXPECT_EQ(rest, (std::vector<int>{2, 3}));
  ctx_.take(kTagRequest);
}

TEST_F(WorkerProtocol, ShrinkBelowProgressHonorsProgress) {
  worker_.on_message(
      ctx_, msg_from(0, kTagTask, encode_task({7, {0, 0, 32, 24}, 0, 8})));
  for (int i = 0; i < 5; ++i) {
    ctx_.take(kTagContinue);
    worker_.on_message(ctx_, msg_from(1, kTagContinue));
  }
  // Worker already rendered frames 0..4; a shrink to 2 can only honor 5.
  worker_.on_message(ctx_, msg_from(0, kTagShrink, encode_shrink({7, 2})));
  ShrinkAck ack;
  ASSERT_TRUE(decode_shrink_ack(&ack, ctx_.take(kTagShrinkAck).payload));
  EXPECT_EQ(ack.honored_end_frame, 5);
}

TEST_F(WorkerProtocol, ShrinkAfterCompletionAcksNothingLeft) {
  run_task({3, {0, 0, 32, 24}, 0, 2});
  worker_.on_message(ctx_, msg_from(0, kTagShrink, encode_shrink({3, 1})));
  ShrinkAck ack;
  ASSERT_TRUE(decode_shrink_ack(&ack, ctx_.take(kTagShrinkAck).payload));
  EXPECT_EQ(ack.honored_end_frame, -1);
}

TEST_F(WorkerProtocol, StopIsQuiet) {
  worker_.on_message(ctx_, msg_from(0, kTagStop));
  EXPECT_TRUE(ctx_.sent.empty());
}

TEST_F(WorkerProtocol, BusyWorkerNacksDifferentTaskOnly) {
  worker_.on_message(
      ctx_, msg_from(0, kTagTask, encode_task({5, {0, 0, 32, 24}, 0, 4})));
  // A duplicate of the current assignment is silently dropped (it can
  // legitimately arrive twice under fault injection).
  worker_.on_message(
      ctx_, msg_from(0, kTagTask, encode_task({5, {0, 0, 32, 24}, 0, 4})));
  EXPECT_FALSE(ctx_.has(kTagTaskNack));
  // A *different* task while busy is refused so the master can requeue it.
  worker_.on_message(
      ctx_, msg_from(0, kTagTask, encode_task({9, {0, 0, 32, 24}, 4, 2})));
  TaskNack nack;
  ASSERT_TRUE(decode_task_nack(&nack, ctx_.take(kTagTaskNack, 0).payload));
  EXPECT_EQ(nack.task_id, 9);
  // The refusal leaves the current task untouched.
  const std::vector<int> frames = drain_continuations();
  EXPECT_EQ(frames, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(worker_.report().tasks_completed, 1);
}

TEST_F(WorkerProtocol, ShrinkToZeroFramesCountsShrunkAwayNotCompleted) {
  worker_.on_message(
      ctx_, msg_from(0, kTagTask, encode_task({4, {0, 0, 32, 24}, 0, 4})));
  // The whole range is stolen before the first frame renders.
  worker_.on_message(ctx_, msg_from(0, kTagShrink, encode_shrink({4, 0})));
  ShrinkAck ack;
  ASSERT_TRUE(decode_shrink_ack(&ack, ctx_.take(kTagShrinkAck).payload));
  EXPECT_EQ(ack.honored_end_frame, 0);
  const std::vector<int> frames = drain_continuations();
  EXPECT_TRUE(frames.empty());
  // The worker still asks for more work, but the empty task is not a
  // completion.
  ctx_.take(kTagRequest, 0);
  EXPECT_EQ(worker_.report().tasks_completed, 0);
  EXPECT_EQ(worker_.report().tasks_shrunk_away, 1);
  EXPECT_EQ(worker_.report().frames_rendered, 0);
}

// Property: shrinking the task's end to the worker's exact progress at every
// possible frame boundary always accounts the task exactly once — completed
// when the worker rendered through its (post-shrink) end inside the render
// loop, shrunk-away when a shrink emptied the remainder first.
TEST_F(WorkerProtocol, ShrinkAtEveryFrameBoundaryAccountsTaskExactlyOnce) {
  const int total = 5;
  for (int boundary = 0; boundary <= total; ++boundary) {
    SCOPED_TRACE("boundary " + std::to_string(boundary));
    RenderWorker worker(scene_, WorkerConfig{});
    RecordingContext ctx(1, 2);
    worker.on_message(
        ctx, msg_from(0, kTagTask,
                      encode_task({boundary, {0, 0, 32, 24}, 0, total})));
    // Render exactly `boundary` frames.
    int rendered = 0;
    for (int i = 0; i < boundary; ++i) {
      ctx.take(kTagContinue);
      worker.on_message(ctx, msg_from(1, kTagContinue));
      while (ctx.has(kTagFrameResult)) {
        ctx.take(kTagFrameResult);
        ++rendered;
      }
    }
    ASSERT_EQ(rendered, boundary);
    // Shrink to the worker's exact progress.
    worker.on_message(ctx, msg_from(0, kTagShrink,
                                    encode_shrink({boundary, boundary})));
    ShrinkAck ack;
    ASSERT_TRUE(decode_shrink_ack(&ack, ctx.take(kTagShrinkAck).payload));
    if (boundary == total) {
      // The task completed inside the render loop before the shrink landed.
      EXPECT_EQ(ack.honored_end_frame, -1);
    } else {
      EXPECT_EQ(ack.honored_end_frame, boundary);
    }
    // Drain whatever continuation is still pending: no further frame may
    // render past the boundary.
    while (ctx.has(kTagContinue)) {
      ctx.take(kTagContinue);
      worker.on_message(ctx, msg_from(1, kTagContinue));
      EXPECT_FALSE(ctx.has(kTagFrameResult));
    }
    ctx.take(kTagRequest, 0);
    EXPECT_FALSE(ctx.has(kTagRequest));  // exactly one
    EXPECT_EQ(worker.report().frames_rendered, boundary);
    EXPECT_EQ(worker.report().tasks_completed, boundary == total ? 1 : 0);
    EXPECT_EQ(worker.report().tasks_shrunk_away, boundary == total ? 0 : 1);
  }
}

// ---------------------------------------------------------------- master --

class MasterProtocol : public ::testing::Test {
 protected:
  MasterProtocol() : scene_(orbit_scene(2, 6, 32, 24)) {}

  std::unique_ptr<RenderMaster> make_master(PartitionScheme scheme,
                                            bool adaptive = true,
                                            int min_split = 2) {
    MasterConfig config;
    config.partition.scheme = scheme;
    config.partition.block_size = 16;
    config.partition.adaptive = adaptive;
    config.partition.min_split_frames = min_split;
    return std::make_unique<RenderMaster>(scene_, config);
  }

  /// Worker-side render of a task frame, to produce a valid FrameResult.
  std::string render_result(const RenderTask& task, int frame,
                            Framebuffer* fb) {
    CoherenceOptions options;
    options.enabled = false;
    CoherentRenderer renderer(scene_, task.region, options);
    renderer.render_frame(frame, fb);
    FrameResult result;
    result.task_id = task.task_id;
    result.frame = frame;
    result.rays = 10;
    result.payload = make_dense_payload(*fb, task.region);
    return encode_frame_result(result);
  }

  AnimatedScene scene_;
};

TEST_F(MasterProtocol, AssignsTasksOnHello) {
  auto master = make_master(PartitionScheme::kSequenceDivision);
  RecordingContext ctx(0, 3);
  master->on_start(ctx);
  master->on_message(ctx, msg_from(1, kTagHello));
  RenderTask t1;
  ASSERT_TRUE(decode_task(&t1, ctx.take(kTagTask, 1).payload));
  master->on_message(ctx, msg_from(2, kTagHello));
  RenderTask t2;
  ASSERT_TRUE(decode_task(&t2, ctx.take(kTagTask, 2).payload));
  // Sequence division across 2 workers: 3 frames each.
  EXPECT_EQ(t1.frame_count + t2.frame_count, 6);
  EXPECT_EQ(t2.first_frame, t1.end_frame());
}

TEST_F(MasterProtocol, CompletesAndStops) {
  auto master = make_master(PartitionScheme::kSequenceDivision, false);
  RecordingContext ctx(0, 2);
  master->on_start(ctx);
  master->on_message(ctx, msg_from(1, kTagHello));
  RenderTask task;
  ASSERT_TRUE(decode_task(&task, ctx.take(kTagTask, 1).payload));
  Framebuffer fb(32, 24);
  for (int f = task.first_frame; f < task.end_frame(); ++f) {
    master->on_message(ctx, msg_from(1, kTagFrameResult,
                                     render_result(task, f, &fb)));
  }
  EXPECT_TRUE(ctx.stopped);
  EXPECT_TRUE(ctx.has(kTagStop));
  EXPECT_EQ(master->report().frames_completed, scene_.frame_count());
  // Frames assembled correctly.
  const Framebuffer ref =
      render_world(scene_.world_at(3), 32, 24, CoherenceOptions{}.trace);
  EXPECT_EQ(master->frames()[3], ref);
}

TEST_F(MasterProtocol, AdaptiveSplitHandshake) {
  auto master = make_master(PartitionScheme::kSequenceDivision, true, 2);
  RecordingContext ctx(0, 3);
  master->on_start(ctx);
  master->on_message(ctx, msg_from(1, kTagHello));
  RenderTask t1;
  ASSERT_TRUE(decode_task(&t1, ctx.take(kTagTask, 1).payload));
  master->on_message(ctx, msg_from(2, kTagHello));
  RenderTask t2;
  ASSERT_TRUE(decode_task(&t2, ctx.take(kTagTask, 2).payload));

  // Worker 1 finishes everything; worker 2 reports nothing yet.
  Framebuffer fb(32, 24);
  for (int f = t1.first_frame; f < t1.end_frame(); ++f) {
    master->on_message(ctx, msg_from(1, kTagFrameResult,
                                     render_result(t1, f, &fb)));
  }
  master->on_message(ctx, msg_from(1, kTagRequest));
  // No pending tasks: the master must try to shrink worker 2.
  ShrinkRequest shrink;
  ASSERT_TRUE(decode_shrink(&shrink, ctx.take(kTagShrink, 2).payload));
  EXPECT_EQ(shrink.task_id, t2.task_id);
  EXPECT_LT(shrink.new_end_frame, t2.end_frame());

  // Worker 2 honors the split; master assigns the stolen range to worker 1.
  master->on_message(
      ctx, msg_from(2, kTagShrinkAck,
                    encode_shrink_ack({t2.task_id, shrink.new_end_frame})));
  RenderTask stolen;
  ASSERT_TRUE(decode_task(&stolen, ctx.take(kTagTask, 1).payload));
  EXPECT_EQ(stolen.first_frame, shrink.new_end_frame);
  EXPECT_EQ(stolen.end_frame(), t2.end_frame());
  EXPECT_EQ(master->report().adaptive_splits, 1);

  // Both workers finish their ranges; master stops.
  for (int f = t2.first_frame; f < shrink.new_end_frame; ++f) {
    master->on_message(ctx, msg_from(2, kTagFrameResult,
                                     render_result(t2, f, &fb)));
  }
  for (int f = stolen.first_frame; f < stolen.end_frame(); ++f) {
    master->on_message(ctx, msg_from(1, kTagFrameResult,
                                     render_result(stolen, f, &fb)));
  }
  EXPECT_TRUE(ctx.stopped);
}

TEST_F(MasterProtocol, NackedSplitLeavesWorkerIdle) {
  auto master = make_master(PartitionScheme::kSequenceDivision, true, 2);
  RecordingContext ctx(0, 3);
  master->on_start(ctx);
  master->on_message(ctx, msg_from(1, kTagHello));
  RenderTask t1;
  ASSERT_TRUE(decode_task(&t1, ctx.take(kTagTask, 1).payload));
  master->on_message(ctx, msg_from(2, kTagHello));
  RenderTask t2;
  ASSERT_TRUE(decode_task(&t2, ctx.take(kTagTask, 2).payload));

  Framebuffer fb(32, 24);
  for (int f = t1.first_frame; f < t1.end_frame(); ++f) {
    master->on_message(ctx, msg_from(1, kTagFrameResult,
                                     render_result(t1, f, &fb)));
  }
  master->on_message(ctx, msg_from(1, kTagRequest));
  ctx.take(kTagShrink, 2);
  // Worker 2 already finished (race): nack.
  master->on_message(ctx, msg_from(2, kTagShrinkAck,
                                   encode_shrink_ack({t2.task_id, -1})));
  EXPECT_FALSE(ctx.has(kTagTask));  // nothing to assign
  EXPECT_EQ(master->report().adaptive_splits, 0);
  // Worker 2's results arrive and complete the animation.
  for (int f = t2.first_frame; f < t2.end_frame(); ++f) {
    master->on_message(ctx, msg_from(2, kTagFrameResult,
                                     render_result(t2, f, &fb)));
  }
  master->on_message(ctx, msg_from(2, kTagRequest));
  EXPECT_TRUE(ctx.stopped);
}

#ifdef NDEBUG
// Failure injection (release builds only — debug builds assert on decode
// failures to surface bugs loudly): malformed payloads must be ignored, not
// crash the process or corrupt protocol state.
TEST_F(MasterProtocol, MalformedPayloadsAreIgnored) {
  auto master = make_master(PartitionScheme::kSequenceDivision, false);
  RecordingContext ctx(0, 2);
  master->on_start(ctx);
  master->on_message(ctx, msg_from(1, kTagHello));
  RenderTask task;
  ASSERT_TRUE(decode_task(&task, ctx.take(kTagTask, 1).payload));

  // Garbage frame results and shrink acks: dropped.
  master->on_message(ctx, msg_from(1, kTagFrameResult, "not a frame"));
  master->on_message(ctx, msg_from(1, kTagShrinkAck, "zzz"));
  EXPECT_FALSE(ctx.stopped);
  EXPECT_EQ(master->report().frame_results, 0);

  // The protocol still completes normally afterwards.
  Framebuffer fb(32, 24);
  for (int f = task.first_frame; f < task.end_frame(); ++f) {
    master->on_message(ctx, msg_from(1, kTagFrameResult,
                                     render_result(task, f, &fb)));
  }
  EXPECT_TRUE(ctx.stopped);
}

TEST_F(WorkerProtocol, MalformedTaskAndShrinkAreIgnored) {
  worker_.on_message(ctx_, msg_from(0, kTagTask, "garbage"));
  EXPECT_FALSE(ctx_.has(kTagContinue));  // no task started
  // A valid task still works after the garbage.
  const std::vector<int> frames = run_task({1, {0, 0, 32, 24}, 0, 2});
  EXPECT_EQ(frames, (std::vector<int>{0, 1}));
  // Garbage shrink is dropped without an ack.
  worker_.on_message(ctx_, msg_from(0, kTagShrink, "junk"));
  EXPECT_FALSE(ctx_.has(kTagShrinkAck));
}
#endif  // NDEBUG

TEST_F(MasterProtocol, TaskNackRequeuesImmediately) {
  auto master = make_master(PartitionScheme::kSequenceDivision, false);
  RecordingContext ctx(0, 3);
  master->on_start(ctx);
  master->on_message(ctx, msg_from(1, kTagHello));
  RenderTask t1;
  ASSERT_TRUE(decode_task(&t1, ctx.take(kTagTask, 1).payload));
  master->on_message(ctx, msg_from(2, kTagHello));
  RenderTask t2;
  ASSERT_TRUE(decode_task(&t2, ctx.take(kTagTask, 2).payload));

  // Worker 1 refuses t1 (its state says it is busy with something else):
  // the task is requeued immediately, no lease timeout involved.
  master->on_message(ctx, msg_from(1, kTagTaskNack,
                                   encode_task_nack({t1.task_id})));
  EXPECT_EQ(master->fault_report().tasks_nacked, 1);
  EXPECT_FALSE(ctx.has(kTagTask));  // no idle worker to take it yet
  // A stale duplicate refusal is ignored (the slot is already freed).
  master->on_message(ctx, msg_from(1, kTagTaskNack,
                                   encode_task_nack({t1.task_id})));
  EXPECT_EQ(master->fault_report().tasks_nacked, 1);

  // Worker 2 finishes its own range and asks for more: it must receive the
  // refused task verbatim — same id, same range, no restart accounting.
  Framebuffer fb(32, 24);
  for (int f = t2.first_frame; f < t2.end_frame(); ++f) {
    master->on_message(ctx, msg_from(2, kTagFrameResult,
                                     render_result(t2, f, &fb)));
  }
  master->on_message(ctx, msg_from(2, kTagRequest));
  RenderTask requeued;
  ASSERT_TRUE(decode_task(&requeued, ctx.take(kTagTask, 2).payload));
  EXPECT_EQ(requeued.task_id, t1.task_id);
  EXPECT_EQ(requeued.first_frame, t1.first_frame);
  EXPECT_EQ(requeued.frame_count, t1.frame_count);
  EXPECT_EQ(master->fault_report().tasks_reassigned, 0);

  for (int f = requeued.first_frame; f < requeued.end_frame(); ++f) {
    master->on_message(ctx, msg_from(2, kTagFrameResult,
                                     render_result(requeued, f, &fb)));
  }
  master->on_message(ctx, msg_from(2, kTagRequest));
  EXPECT_TRUE(ctx.stopped);
}

TEST_F(MasterProtocol, StaticModeNeverShrinks) {
  auto master = make_master(PartitionScheme::kSequenceDivision, false);
  RecordingContext ctx(0, 3);
  master->on_start(ctx);
  master->on_message(ctx, msg_from(1, kTagHello));
  ctx.take(kTagTask, 1);
  master->on_message(ctx, msg_from(2, kTagHello));
  ctx.take(kTagTask, 2);
  master->on_message(ctx, msg_from(1, kTagRequest));
  EXPECT_FALSE(ctx.has(kTagShrink));
}

}  // namespace
}  // namespace now
