#include "src/math/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace now {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformMeanIsPlausible) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(6);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, PointInBoxStaysInBox) {
  Rng rng(7);
  const Vec3 lo{-2, 0, 5};
  const Vec3 hi{-1, 3, 9};
  for (int i = 0; i < 1000; ++i) {
    const Vec3 p = rng.point_in_box(lo, hi);
    EXPECT_GE(p.x, lo.x); EXPECT_LT(p.x, hi.x);
    EXPECT_GE(p.y, lo.y); EXPECT_LT(p.y, hi.y);
    EXPECT_GE(p.z, lo.z); EXPECT_LT(p.z, hi.z);
  }
}

TEST(Rng, UnitVectorHasUnitLength) {
  Rng rng(8);
  Vec3 mean;
  for (int i = 0; i < 2000; ++i) {
    const Vec3 v = rng.unit_vector();
    EXPECT_NEAR(v.length(), 1.0, 1e-12);
    mean += v;
  }
  // Directions are roughly isotropic: the mean vector is near zero.
  EXPECT_LT((mean / 2000.0).length(), 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng base(9);
  Rng forked = base.fork(1);
  Rng forked2 = base.fork(2);
  // Forked streams differ from each other and from the base.
  EXPECT_NE(forked.next_u64(), forked2.next_u64());
  // Forking is deterministic.
  Rng base2(9);
  Rng forked_again = base2.fork(1);
  Rng forked_ref = Rng(9).fork(1);
  EXPECT_EQ(forked_again.next_u64(), forked_ref.next_u64());
}

TEST(Rng, SplitMixKnownToAdvanceState) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace now
