// BvhAccelerator must agree exactly with brute force (and therefore with
// the uniform grid), on random worlds and in full renders.
#include "src/trace/bvh.h"

#include <gtest/gtest.h>

#include "src/geom/box.h"
#include "src/geom/plane.h"
#include "src/geom/sphere.h"
#include "src/math/rng.h"
#include "src/scene/builtin_scenes.h"
#include "src/trace/render.h"
#include "src/trace/uniform_grid.h"

namespace now {
namespace {

World random_world(std::uint64_t seed, int objects, bool with_plane) {
  Rng rng(seed);
  World world;
  const int mat = world.add_material(Material::matte(Color::gray(0.5)));
  for (int i = 0; i < objects; ++i) {
    const Vec3 pos = rng.point_in_box({-3, -3, -3}, {3, 3, 3});
    if (rng.next_double() < 0.5) {
      world.add_object(std::make_unique<Sphere>(pos, rng.uniform(0.2, 0.8)),
                       mat);
    } else {
      world.add_object(
          std::make_unique<Box>(
              pos, rng.point_in_box({0.1, 0.1, 0.1}, {0.6, 0.6, 0.6}),
              Mat3::rotation_y(rng.uniform(0, kTwoPi))),
          mat);
    }
  }
  if (with_plane) {
    world.add_object(std::make_unique<Plane>(Vec3{0, 1, 0}, -3.5), mat);
  }
  return world;
}

class BvhVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(BvhVsBruteForce, ClosestHitsAgree) {
  const int seed = GetParam();
  const World world = random_world(seed, 15, seed % 2 == 0);
  const BruteForceAccelerator brute(world);
  const BvhAccelerator bvh(world);
  Rng rng(seed * 13 + 7);
  for (int i = 0; i < 500; ++i) {
    const Ray ray{rng.point_in_box({-5, -5, -5}, {5, 5, 5}),
                  rng.unit_vector()};
    Hit hb, hv;
    const bool fb = brute.closest_hit(ray, 1e-9, kRayInfinity, &hb);
    const bool fv = bvh.closest_hit(ray, 1e-9, kRayInfinity, &hv);
    ASSERT_EQ(fb, fv) << "seed " << seed << " ray " << i;
    if (fb) {
      ASSERT_NEAR(hb.t, hv.t, 1e-9) << "seed " << seed << " ray " << i;
      ASSERT_EQ(hb.object_id, hv.object_id);
    }
  }
}

TEST_P(BvhVsBruteForce, AnyHitsAgree) {
  const int seed = GetParam();
  const World world = random_world(seed, 12, false);
  const BruteForceAccelerator brute(world);
  const BvhAccelerator bvh(world);
  Rng rng(seed * 3 + 11);
  for (int i = 0; i < 500; ++i) {
    const Ray ray{rng.point_in_box({-5, -5, -5}, {5, 5, 5}),
                  rng.unit_vector()};
    const double t_max = rng.uniform(0.5, 10.0);
    ASSERT_EQ(brute.any_hit(ray, 1e-9, t_max, nullptr),
              bvh.any_hit(ray, 1e-9, t_max, nullptr))
        << "seed " << seed << " ray " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BvhVsBruteForce, ::testing::Range(1, 7));

TEST(Bvh, RenderedImageMatchesGrid) {
  const AnimatedScene scene = orbit_scene(6, 1, 48, 36);
  const World world = scene.world_at(0);
  const UniformGridAccelerator grid(world);
  const BvhAccelerator bvh(world);
  Tracer t1(world, grid);
  Tracer t2(world, bvh);
  Framebuffer f1(48, 36), f2(48, 36);
  render_frame(&t1, &f1);
  render_frame(&t2, &f2);
  EXPECT_EQ(f1, f2);
}

TEST(Bvh, EmptyAndPlaneOnlyWorlds) {
  World empty;
  empty.add_material(Material::matte(Color::white()));
  const BvhAccelerator bvh_empty(empty);
  Hit hit;
  EXPECT_FALSE(bvh_empty.closest_hit({{0, 0, 0}, {1, 0, 0}}, 1e-9, 1e9, &hit));
  EXPECT_EQ(bvh_empty.node_count(), 0);

  World plane_only;
  const int mat = plane_only.add_material(Material::matte(Color::white()));
  plane_only.add_object(std::make_unique<Plane>(Vec3{0, 1, 0}, 0.0), mat);
  const BvhAccelerator bvh(plane_only);
  ASSERT_TRUE(bvh.closest_hit({{0, 2, 0}, {0, -1, 0}}, 1e-9, 1e9, &hit));
  EXPECT_NEAR(hit.t, 2.0, 1e-12);
}

TEST(Bvh, DepthIsLogarithmic) {
  const World world = random_world(99, 64, false);
  const BvhAccelerator bvh(world, 1);
  // 64 leaves: depth should be ~log2(64)+1 = 7, certainly < 16.
  EXPECT_GE(bvh.depth(), 6);
  EXPECT_LT(bvh.depth(), 16);
}

}  // namespace
}  // namespace now
