#include "src/math/vec3.h"

#include <gtest/gtest.h>

#include <sstream>

namespace now {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_EQ(a / 2.0, Vec3(0.5, 1, 1.5));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
  EXPECT_EQ(a * b, Vec3(4, 10, 18));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1, 1, 1};
  v += {1, 2, 3};
  EXPECT_EQ(v, Vec3(2, 3, 4));
  v -= {1, 1, 1};
  EXPECT_EQ(v, Vec3(1, 2, 3));
  v *= 3.0;
  EXPECT_EQ(v, Vec3(3, 6, 9));
  v /= 3.0;
  EXPECT_EQ(v, Vec3(1, 2, 3));
}

TEST(Vec3, DotAndCross) {
  EXPECT_DOUBLE_EQ(dot(Vec3(1, 2, 3), Vec3(4, 5, 6)), 32.0);
  EXPECT_EQ(cross(Vec3(1, 0, 0), Vec3(0, 1, 0)), Vec3(0, 0, 1));
  EXPECT_EQ(cross(Vec3(0, 1, 0), Vec3(1, 0, 0)), Vec3(0, 0, -1));
  // Cross product is perpendicular to both inputs.
  const Vec3 a{1.3, -2.1, 0.7};
  const Vec3 b{-0.4, 2.2, 5.0};
  const Vec3 c = cross(a, b);
  EXPECT_NEAR(dot(c, a), 0.0, 1e-12);
  EXPECT_NEAR(dot(c, b), 0.0, 1e-12);
}

TEST(Vec3, LengthAndNormalize) {
  EXPECT_DOUBLE_EQ(Vec3(3, 4, 0).length(), 5.0);
  EXPECT_DOUBLE_EQ(Vec3(1, 2, 2).length_squared(), 9.0);
  const Vec3 n = Vec3(10, 0, 0).normalized();
  EXPECT_EQ(n, Vec3(1, 0, 0));
  EXPECT_NEAR(Vec3(1, 1, 1).normalized().length(), 1.0, 1e-15);
}

TEST(Vec3, MinMaxLerp) {
  EXPECT_EQ(min(Vec3(1, 5, 3), Vec3(2, 4, 3)), Vec3(1, 4, 3));
  EXPECT_EQ(max(Vec3(1, 5, 3), Vec3(2, 4, 3)), Vec3(2, 5, 3));
  EXPECT_EQ(lerp(Vec3(0, 0, 0), Vec3(2, 4, 6), 0.5), Vec3(1, 2, 3));
  EXPECT_EQ(lerp(Vec3(1, 1, 1), Vec3(2, 2, 2), 0.0), Vec3(1, 1, 1));
  EXPECT_EQ(lerp(Vec3(1, 1, 1), Vec3(2, 2, 2), 1.0), Vec3(2, 2, 2));
}

TEST(Vec3, IndexAccess) {
  Vec3 v{7, 8, 9};
  EXPECT_DOUBLE_EQ(v[0], 7);
  EXPECT_DOUBLE_EQ(v[1], 8);
  EXPECT_DOUBLE_EQ(v[2], 9);
  v[1] = 42;
  EXPECT_EQ(v, Vec3(7, 42, 9));
}

TEST(Vec3, IsFinite) {
  EXPECT_TRUE(Vec3(1, 2, 3).is_finite());
  EXPECT_FALSE(Vec3(1, std::nan(""), 3).is_finite());
  EXPECT_FALSE(Vec3(1, 2, 1e308 * 10).is_finite());
}

TEST(Vec3, Reflect) {
  // Incoming 45-degree ray off a floor.
  const Vec3 v = Vec3(1, -1, 0).normalized();
  const Vec3 r = reflect(v, {0, 1, 0});
  EXPECT_NEAR(r.x, v.x, 1e-15);
  EXPECT_NEAR(r.y, -v.y, 1e-15);
  // Reflection preserves length.
  EXPECT_NEAR(r.length(), 1.0, 1e-15);
}

TEST(Vec3, RefractStraightThrough) {
  Vec3 out;
  ASSERT_TRUE(refract(Vec3(0, -1, 0), Vec3(0, 1, 0), 1.0, &out));
  EXPECT_NEAR((out - Vec3(0, -1, 0)).length(), 0.0, 1e-15);
}

TEST(Vec3, RefractSnellsLaw) {
  const double eta = 1.0 / 1.5;  // air into glass
  const Vec3 in = Vec3(1, -1, 0).normalized();
  Vec3 out;
  ASSERT_TRUE(refract(in, {0, 1, 0}, eta, &out));
  const double sin_in = in.x;
  const double sin_out = out.normalized().x;
  EXPECT_NEAR(sin_out, eta * sin_in, 1e-12);
}

TEST(Vec3, RefractTotalInternalReflection) {
  // Glass to air at a grazing angle: must report TIR.
  const Vec3 in = Vec3(1, -0.1, 0).normalized();
  Vec3 out;
  EXPECT_FALSE(refract(in, {0, 1, 0}, 1.5, &out));
}

TEST(Color, ArithmeticAndClamp) {
  const Color c{0.5, 0.25, 1.5};
  EXPECT_EQ(c * 2.0, Color(1.0, 0.5, 3.0));
  EXPECT_EQ(c + Color(0.1, 0.1, 0.1), Color(0.6, 0.35, 1.6));
  EXPECT_EQ(to_byte(0.0), 0);
  EXPECT_EQ(to_byte(1.0), 255);
  EXPECT_EQ(to_byte(2.0), 255);   // clamps over-bright
  EXPECT_EQ(to_byte(-1.0), 0);    // clamps negative
  EXPECT_EQ(to_byte(0.5), 128);   // rounds, not truncates
}

TEST(Color, MaxComponent) {
  EXPECT_DOUBLE_EQ(Color(0.1, 0.9, 0.5).max_component(), 0.9);
  EXPECT_DOUBLE_EQ(Color(0.9, 0.1, 0.5).max_component(), 0.9);
  EXPECT_DOUBLE_EQ(Color(0.1, 0.5, 0.9).max_component(), 0.9);
}

TEST(MathHelpers, Clamp01AndDegrees) {
  EXPECT_DOUBLE_EQ(clamp01(-2.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp01(0.5), 0.5);
  EXPECT_DOUBLE_EQ(clamp01(3.0), 1.0);
  EXPECT_NEAR(degrees_to_radians(180.0), kPi, 1e-15);
  EXPECT_TRUE(nearly_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(nearly_equal(1.0, 1.1));
}

TEST(Vec3, StreamOutput) {
  std::ostringstream os;
  os << Vec3(1, 2, 3);
  EXPECT_EQ(os.str(), "(1, 2, 3)");
}

}  // namespace
}  // namespace now
