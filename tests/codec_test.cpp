// Frame-payload codec tests: compressor round trips (random data, runs at
// control-byte boundaries, incompressible input), the worst-case size bound,
// strict rejection of malformed blocks, and the versioned envelope's
// CRC-over-decoded-bytes corruption detection.
#include "src/net/codec.h"

#include <gtest/gtest.h>

#include <string>

#include "src/image/pixel_codec.h"
#include "src/math/rng.h"
#include "src/par/protocol.h"

namespace now {
namespace {

std::string random_bytes(Rng* rng, std::size_t n, int alphabet) {
  std::string out(n, '\0');
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<char>(
        rng->next_below(static_cast<std::uint32_t>(alphabet)));
  }
  return out;
}

void expect_round_trip(const std::string& raw) {
  const std::string packed = compress_bytes(raw);
  // Worst case: stored fallback, raw + header. Never more.
  EXPECT_LE(packed.size(), raw.size() + kCompressHeaderBytes);
  std::string back;
  ASSERT_TRUE(decompress_bytes(&back, packed)) << "len " << raw.size();
  EXPECT_EQ(back, raw);
}

TEST(Compressor, RoundTripsEdgeCases) {
  expect_round_trip("");
  expect_round_trip("x");
  expect_round_trip("ab");
  expect_round_trip(std::string(2, 'a'));   // run below RLE threshold
  expect_round_trip(std::string(3, 'a'));   // minimum run
  expect_round_trip(std::string(129, 'a'));  // exactly one max-length run
  expect_round_trip(std::string(130, 'a'));  // max run + 1 leftover
  expect_round_trip(std::string(128, 'x') + std::string(129, 'y'));
  expect_round_trip(std::string(10000, '\0'));
}

TEST(Compressor, RoundTripsLiteralBlockBoundaries) {
  // 127 / 128 / 129 distinct bytes straddle the max literal block (128).
  Rng rng(1);
  for (const std::size_t n : {127u, 128u, 129u, 255u, 256u, 257u}) {
    std::string raw(n, '\0');
    for (std::size_t i = 0; i < n; ++i) raw[i] = static_cast<char>(i * 37 + 11);
    expect_round_trip(raw);
  }
}

TEST(Compressor, RoundTripsRandomDataAcrossEntropies) {
  Rng rng(42);
  // alphabet 1 → all zero (max compressible); 256 → incompressible.
  for (const int alphabet : {1, 2, 4, 32, 256}) {
    for (const std::size_t n : {1u, 7u, 64u, 1000u, 4096u}) {
      expect_round_trip(random_bytes(&rng, n, alphabet));
    }
  }
}

TEST(Compressor, CompressesRunsAndGradients) {
  // Flat background: RLE should crush it.
  const std::string flat(4096, '\7');
  EXPECT_LT(compress_bytes(flat).size(), flat.size() / 10);
  // Smooth gradient: byte-delta turns each 16-byte step into a short zero
  // run plus one literal (~4:1), where plain RLE finds nothing.
  std::string ramp(4096, '\0');
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = static_cast<char>(i / 16);
  }
  EXPECT_LT(compress_bytes(ramp).size(), ramp.size() / 2);
}

TEST(Compressor, StoredPathIsExact) {
  Rng rng(7);
  const std::string raw = random_bytes(&rng, 333, 256);
  const std::string packed = store_bytes(raw);
  EXPECT_EQ(packed.size(), raw.size() + kCompressHeaderBytes);
  std::string back;
  ASSERT_TRUE(decompress_bytes(&back, packed));
  EXPECT_EQ(back, raw);
}

TEST(Compressor, RejectsMalformedBlocks) {
  std::string back;
  // Too short for the header.
  EXPECT_FALSE(decompress_bytes(&back, std::string("\0\0\0", 3)));
  // Unknown method.
  std::string bad = store_bytes("abc");
  bad[0] = 9;
  EXPECT_FALSE(decompress_bytes(&back, bad));
  // Stored block whose body length disagrees with the declared size.
  bad = store_bytes("abc");
  bad.pop_back();
  EXPECT_FALSE(decompress_bytes(&back, bad));
  bad = store_bytes("abc") + "x";
  EXPECT_FALSE(decompress_bytes(&back, bad));
  // Truncated RLE body (drop the tail of a valid compressed block).
  const std::string packed = compress_bytes(std::string(1000, 'z'));
  ASSERT_EQ(packed[0], 1);  // RLE wins on a pure run
  bad = packed.substr(0, packed.size() - 1);
  EXPECT_FALSE(decompress_bytes(&back, bad));
  // RLE body that stops short of the declared raw size.
  bad = packed;
  bad[1] = static_cast<char>(0xFF);  // raw_size lies (little-endian low byte)
  EXPECT_FALSE(decompress_bytes(&back, bad));
  // Absurd declared size with a tiny body.
  bad = std::string(1, '\0') + std::string("\xFF\xFF\xFF\x7F", 4) + "ab";
  EXPECT_FALSE(decompress_bytes(&back, bad));
  // The reserved RLE control byte (128) is invalid.
  bad = std::string(1, '\1');
  bad += std::string("\x02\x00\x00\x00", 4);
  bad += static_cast<char>(128);
  bad += "ab";
  EXPECT_FALSE(decompress_bytes(&back, bad));
}

TEST(Envelope, RoundTripsBothKindsAndCodecs) {
  Rng rng(3);
  for (const FrameCodec codec : {FrameCodec::kRaw, FrameCodec::kDelta}) {
    for (const std::uint8_t kind : {kFrameKindKey, kFrameKindDelta}) {
      const std::string payload = random_bytes(&rng, 500, 8);
      const std::string wire = encode_frame_payload(payload, kind, codec);
      std::string back;
      std::uint8_t got_kind = 255;
      ASSERT_TRUE(decode_frame_payload(&back, &got_kind, wire));
      EXPECT_EQ(back, payload);
      EXPECT_EQ(got_kind, kind);
    }
  }
}

TEST(Envelope, DetectsCorruptionEverywhere) {
  Rng rng(5);
  const std::string payload = random_bytes(&rng, 300, 4);
  const std::string wire =
      encode_frame_payload(payload, kFrameKindKey, FrameCodec::kDelta);
  std::string back;
  std::uint8_t kind = 0;
  // Flipping any single bit must be caught: version/kind checks, the
  // compressor's structural validation, or the CRC over decoded bytes. The
  // one exception is the kind byte flipping to the *other valid kind* —
  // that is caught one layer up (decode_frame_result's kind⇔payload check).
  for (std::size_t i = 0; i < wire.size(); ++i) {
    std::string bad = wire;
    bad[i] ^= 0x01;
    if (i == 1) continue;  // key↔delta flip: valid at this layer by design
    EXPECT_FALSE(decode_frame_payload(&back, &kind, bad)) << "byte " << i;
  }
  // Truncations at every length.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(decode_frame_payload(&back, &kind, wire.substr(0, len)))
        << "len " << len;
  }
}

TEST(Envelope, RejectsUnknownVersionAndKind) {
  const std::string wire =
      encode_frame_payload("abc", kFrameKindKey, FrameCodec::kRaw);
  std::string back;
  std::uint8_t kind = 0;
  std::string bad = wire;
  bad[0] = 99;
  EXPECT_FALSE(decode_frame_payload(&back, &kind, bad));
  bad = wire;
  bad[1] = 7;
  EXPECT_FALSE(decode_frame_payload(&back, &kind, bad));
}

// -- frame-result integration ---------------------------------------------

FrameResult sparse_result(Rng* rng, const PixelRect& rect, double density) {
  Framebuffer fb(rect.x0 + rect.width, rect.y0 + rect.height);
  PixelMask mask(fb.width(), fb.height());
  for (int y = rect.y0; y < rect.y0 + rect.height; ++y) {
    for (int x = rect.x0; x < rect.x0 + rect.width; ++x) {
      fb.set(x, y, Rgb8{static_cast<std::uint8_t>(rng->next_below(256)),
                        static_cast<std::uint8_t>(rng->next_below(256)),
                        static_cast<std::uint8_t>(rng->next_below(256))});
      if (rng->next_double() < density) mask.set(x, y, true);
    }
  }
  FrameResult result;
  result.task_id = 4;
  result.frame = 9;
  result.payload = make_sparse_payload(fb, rect, mask);
  return result;
}

TEST(FrameResultCodec, RandomMasksRoundTripUnderBothCodecs) {
  Rng rng(11);
  const PixelRect rect{3, 2, 37, 29};  // odd sizes hit run boundaries
  for (const FrameCodec codec : {FrameCodec::kRaw, FrameCodec::kDelta}) {
    for (const double density : {0.0, 0.01, 0.3, 1.0}) {
      const FrameResult result = sparse_result(&rng, rect, density);
      FrameResult out;
      ASSERT_TRUE(
          decode_frame_result(&out, encode_frame_result(result, codec)));
      EXPECT_EQ(out.payload.dense, result.payload.dense);
      EXPECT_EQ(out.payload.rect, rect);
      EXPECT_EQ(encode_payload(out.payload), encode_payload(result.payload));
    }
  }
}

TEST(FrameResultCodec, KindMustMatchPayloadShape) {
  Rng rng(13);
  FrameResult result = sparse_result(&rng, {0, 0, 16, 16}, 0.1);
  ASSERT_FALSE(result.payload.dense);
  std::string wire = encode_frame_result(result, FrameCodec::kRaw);
  // The envelope is the trailing str field; its kind byte sits one past the
  // envelope start. Flip delta→key: the envelope itself stays valid, but
  // the payload inside is sparse, so decode_frame_result must reject the
  // inconsistency.
  const std::string envelope = encode_frame_payload(
      encode_payload(result.payload), kFrameKindDelta, FrameCodec::kRaw);
  const std::size_t kind_pos = wire.size() - envelope.size() + 1;
  ASSERT_EQ(static_cast<std::uint8_t>(wire[kind_pos]), kFrameKindDelta);
  wire[kind_pos] = static_cast<char>(kFrameKindKey);
  FrameResult out;
  EXPECT_FALSE(decode_frame_result(&out, wire));
}

TEST(FrameResultCodec, RejectsTruncationAtEveryLength) {
  Rng rng(17);
  const FrameResult result = sparse_result(&rng, {0, 0, 24, 18}, 0.2);
  const std::string wire = encode_frame_result(result, FrameCodec::kDelta);
  FrameResult out;
  for (std::size_t len = 0; len < wire.size(); len += 3) {
    EXPECT_FALSE(decode_frame_result(&out, wire.substr(0, len)));
  }
  EXPECT_FALSE(decode_frame_result(&out, wire + "x"));
}

TEST(FrameResultCodec, IncompressiblePayloadStaysNearRaw) {
  Rng rng(19);
  const FrameResult result = sparse_result(&rng, {0, 0, 64, 64}, 1.0);
  const std::size_t raw_size = encoded_size(result.payload);
  const std::string wire = encode_frame_result(result, FrameCodec::kDelta);
  // Envelope (6) + compress header (5) + fixed fields (incl. the 8-byte
  // trace context and observed render time) is the only overhead allowed on
  // incompressible pixels.
  EXPECT_LE(wire.size(), raw_size + 80);
}

TEST(FrameCodecName, ParsesAndPrints) {
  FrameCodec codec = FrameCodec::kRaw;
  EXPECT_TRUE(parse_frame_codec("delta", &codec));
  EXPECT_EQ(codec, FrameCodec::kDelta);
  EXPECT_TRUE(parse_frame_codec("raw", &codec));
  EXPECT_EQ(codec, FrameCodec::kRaw);
  EXPECT_FALSE(parse_frame_codec("zstd", &codec));
  EXPECT_STREQ(to_string(FrameCodec::kDelta), "delta");
  EXPECT_STREQ(to_string(FrameCodec::kRaw), "raw");
}

}  // namespace
}  // namespace now
