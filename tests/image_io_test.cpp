#include "src/image/image_io.h"

#include <gtest/gtest.h>

#include "src/math/rng.h"

namespace now {
namespace {

Framebuffer random_image(int w, int h, std::uint64_t seed) {
  Framebuffer fb(w, h);
  Rng rng(seed);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      fb.set(x, y, Rgb8{static_cast<std::uint8_t>(rng.next_below(256)),
                        static_cast<std::uint8_t>(rng.next_below(256)),
                        static_cast<std::uint8_t>(rng.next_below(256))});
    }
  }
  return fb;
}

TEST(TgaCodec, InMemoryRoundTrip) {
  const Framebuffer fb = random_image(17, 9, 1);
  const std::string bytes = encode_tga(fb);
  Framebuffer out;
  ASSERT_TRUE(decode_tga(&out, bytes));
  EXPECT_EQ(out, fb);
}

TEST(TgaCodec, HeaderIsWellFormed) {
  const Framebuffer fb(320, 240);
  const std::string bytes = encode_tga(fb);
  ASSERT_GE(bytes.size(), 18u);
  EXPECT_EQ(bytes[2], 2);    // uncompressed true-color
  EXPECT_EQ(static_cast<unsigned char>(bytes[16]), 24);  // bpp
  EXPECT_EQ(bytes.size(), 18u + 320u * 240u * 3u);
}

TEST(TgaCodec, RejectsTruncatedData) {
  const Framebuffer fb = random_image(8, 8, 2);
  std::string bytes = encode_tga(fb);
  bytes.resize(bytes.size() - 10);
  Framebuffer out;
  EXPECT_FALSE(decode_tga(&out, bytes));
  EXPECT_FALSE(decode_tga(&out, std::string("short")));
}

TEST(TgaCodec, RejectsWrongType) {
  const Framebuffer fb = random_image(4, 4, 3);
  std::string bytes = encode_tga(fb);
  bytes[2] = 10;  // RLE type: unsupported
  Framebuffer out;
  EXPECT_FALSE(decode_tga(&out, bytes));
}

TEST(TgaCodec, DecodesBottomLeftOrigin) {
  const Framebuffer fb = random_image(5, 4, 4);
  std::string bytes = encode_tga(fb);
  // Flip the origin bit and reorder rows accordingly; decode must undo it.
  bytes[17] = 0;  // bottom-left origin
  std::string body = bytes.substr(18);
  std::string flipped;
  const int row_bytes = 5 * 3;
  for (int row = 3; row >= 0; --row) {
    flipped += body.substr(static_cast<std::size_t>(row) * row_bytes, row_bytes);
  }
  bytes = bytes.substr(0, 18) + flipped;
  Framebuffer out;
  ASSERT_TRUE(decode_tga(&out, bytes));
  EXPECT_EQ(out, fb);
}

TEST(TgaFile, DiskRoundTrip) {
  const Framebuffer fb = random_image(31, 13, 5);
  const std::string path = ::testing::TempDir() + "/io_test.tga";
  ASSERT_TRUE(write_tga(fb, path));
  Framebuffer out;
  ASSERT_TRUE(read_tga(&out, path));
  EXPECT_EQ(out, fb);
}

TEST(TgaFile, ReadMissingFileFails) {
  Framebuffer out;
  EXPECT_FALSE(read_tga(&out, "/nonexistent/nope.tga"));
}

TEST(PpmFile, DiskRoundTrip) {
  const Framebuffer fb = random_image(23, 11, 6);
  const std::string path = ::testing::TempDir() + "/io_test.ppm";
  ASSERT_TRUE(write_ppm(fb, path));
  Framebuffer out;
  ASSERT_TRUE(read_ppm(&out, path));
  EXPECT_EQ(out, fb);
}

TEST(PpmFile, RejectsBadMagic) {
  const std::string path = ::testing::TempDir() + "/bad.ppm";
  {
    std::string junk = "P3\n2 2\n255\nnot binary";
    FILE* f = std::fopen(path.c_str(), "wb");
    std::fwrite(junk.data(), 1, junk.size(), f);
    std::fclose(f);
  }
  Framebuffer out;
  EXPECT_FALSE(read_ppm(&out, path));
}

}  // namespace
}  // namespace now
