#include "src/image/framebuffer.h"

#include <gtest/gtest.h>

namespace now {
namespace {

TEST(PixelRect, BasicProperties) {
  const PixelRect r{10, 20, 30, 40};
  EXPECT_EQ(r.area(), 1200);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(r.contains(10, 20));
  EXPECT_TRUE(r.contains(39, 59));
  EXPECT_FALSE(r.contains(40, 20));
  EXPECT_FALSE(r.contains(10, 60));
  EXPECT_TRUE((PixelRect{0, 0, 0, 5}).empty());
}

TEST(PixelRect, Intersect) {
  const PixelRect a{0, 0, 10, 10};
  const PixelRect b{5, 5, 10, 10};
  const PixelRect i = PixelRect::intersect(a, b);
  EXPECT_EQ(i, (PixelRect{5, 5, 5, 5}));
  const PixelRect disjoint = PixelRect::intersect(a, {20, 20, 5, 5});
  EXPECT_TRUE(disjoint.empty());
}

TEST(Framebuffer, ConstructionAndFill) {
  Framebuffer fb(4, 3, Rgb8{1, 2, 3});
  EXPECT_EQ(fb.width(), 4);
  EXPECT_EQ(fb.height(), 3);
  EXPECT_EQ(fb.pixel_count(), 12);
  EXPECT_EQ(fb.at(3, 2), (Rgb8{1, 2, 3}));
  fb.fill({9, 9, 9});
  EXPECT_EQ(fb.at(0, 0), (Rgb8{9, 9, 9}));
}

TEST(Framebuffer, SetFromColorQuantizes) {
  Framebuffer fb(1, 1);
  fb.set(0, 0, Color{0.5, 1.5, -0.5});
  EXPECT_EQ(fb.at(0, 0), (Rgb8{128, 255, 0}));
}

TEST(Framebuffer, ExtractBlitRoundTrip) {
  Framebuffer fb(8, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      fb.set(x, y, Rgb8{static_cast<std::uint8_t>(x),
                        static_cast<std::uint8_t>(y), 0});
    }
  }
  const PixelRect rect{2, 3, 4, 2};
  const std::vector<Rgb8> block = fb.extract(rect);
  ASSERT_EQ(block.size(), 8u);
  EXPECT_EQ(block[0], (Rgb8{2, 3, 0}));
  EXPECT_EQ(block[7], (Rgb8{5, 4, 0}));

  Framebuffer other(8, 8);
  other.blit(rect, block);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      if (rect.contains(x, y)) {
        EXPECT_EQ(other.at(x, y), fb.at(x, y));
      } else {
        EXPECT_EQ(other.at(x, y), (Rgb8{0, 0, 0}));
      }
    }
  }
}

TEST(Framebuffer, EqualityComparesPixels) {
  Framebuffer a(2, 2);
  Framebuffer b(2, 2);
  EXPECT_EQ(a, b);
  b.set(1, 1, Rgb8{1, 0, 0});
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == Framebuffer(2, 3));
}

TEST(Framebuffer, FullRect) {
  const Framebuffer fb(5, 7);
  EXPECT_EQ(fb.full_rect(), (PixelRect{0, 0, 5, 7}));
}

}  // namespace
}  // namespace now
