// CoherentRenderer: the byte-identical-output guarantee and the bookkeeping
// around full vs incremental renders.
#include "src/core/coherent_renderer.h"

#include <gtest/gtest.h>

#include "src/scene/builtin_scenes.h"

namespace now {
namespace {

Framebuffer reference_frame(const AnimatedScene& scene, int frame,
                            const TraceOptions& trace) {
  return render_world(scene.world_at(frame), scene.width(), scene.height(),
                      trace);
}

TEST(CoherentRenderer, FirstFrameIsFullRender) {
  const AnimatedScene scene = orbit_scene(3, 5, 64, 48);
  CoherentRenderer renderer(scene, {0, 0, 64, 48});
  Framebuffer fb(64, 48);
  const FrameRenderResult r = renderer.render_frame(0, &fb);
  EXPECT_TRUE(r.full_render);
  EXPECT_EQ(r.pixels_recomputed, 64 * 48);
}

TEST(CoherentRenderer, MatchesFullRenderEveryFrame) {
  const AnimatedScene scene = orbit_scene(4, 6, 64, 48);
  CoherenceOptions options;
  CoherentRenderer renderer(scene, {0, 0, 64, 48}, options);
  Framebuffer fb(64, 48);
  for (int frame = 0; frame < scene.frame_count(); ++frame) {
    const FrameRenderResult r = renderer.render_frame(frame, &fb);
    const Framebuffer ref = reference_frame(scene, frame, options.trace);
    ASSERT_EQ(fb, ref) << "coherent render diverged at frame " << frame
                       << " (recomputed " << r.pixels_recomputed << ")";
  }
}

TEST(CoherentRenderer, IncrementalFramesRecomputeFewerPixels) {
  const AnimatedScene scene = orbit_scene(3, 6, 64, 48);
  CoherentRenderer renderer(scene, {0, 0, 64, 48});
  Framebuffer fb(64, 48);
  renderer.render_frame(0, &fb);
  const FrameRenderResult r = renderer.render_frame(1, &fb);
  EXPECT_FALSE(r.full_render);
  EXPECT_LT(r.pixels_recomputed, r.pixels_total);
  EXPECT_GT(r.pixels_recomputed, 0);
}

TEST(CoherentRenderer, StaticSceneRecomputesNothing) {
  // Build a scene whose objects never move: every incremental frame should
  // recompute zero pixels and trace zero rays.
  Rng rng(11);
  AnimatedScene scene = random_scene(&rng, 5, 4);
  // Strip the animators.
  AnimatedScene static_scene;
  static_scene.set_frames(scene.frame_count(), scene.fps());
  static_scene.set_resolution(scene.width(), scene.height());
  static_scene.set_background(scene.background());
  static_scene.set_camera(scene.camera_at(0));
  for (int m = 0; m < scene.material_count(); ++m) {
    static_scene.add_material(scene.material(m));
  }
  for (int i = 0; i < scene.light_count(); ++i) {
    static_scene.add_light(scene.light_at(i, 0));
  }
  for (int i = 0; i < scene.object_count(); ++i) {
    static_scene.add_object(scene.object(i).name,
                            scene.object(i).local->clone(),
                            scene.object(i).material_id, nullptr);
  }

  CoherentRenderer renderer(static_scene, {0, 0, 64, 48});
  Framebuffer fb(64, 48);
  renderer.render_frame(0, &fb);
  for (int frame = 1; frame < static_scene.frame_count(); ++frame) {
    const FrameRenderResult r = renderer.render_frame(frame, &fb);
    EXPECT_EQ(r.pixels_recomputed, 0) << "frame " << frame;
    EXPECT_EQ(r.stats.total_rays(), 0u) << "frame " << frame;
  }
}

TEST(CoherentRenderer, DisabledCoherenceAlwaysFullRenders) {
  const AnimatedScene scene = orbit_scene(3, 3, 48, 36);
  CoherenceOptions options;
  options.enabled = false;
  CoherentRenderer renderer(scene, {0, 0, 48, 36}, options);
  Framebuffer fb(48, 36);
  for (int frame = 0; frame < 3; ++frame) {
    const FrameRenderResult r = renderer.render_frame(frame, &fb);
    EXPECT_TRUE(r.full_render);
    EXPECT_EQ(r.pixels_recomputed, 48 * 36);
  }
}

TEST(CoherentRenderer, RegionRendererOnlyTouchesItsRegion) {
  const AnimatedScene scene = orbit_scene(4, 4, 64, 48);
  const PixelRect region{16, 8, 32, 24};
  CoherenceOptions options;
  CoherentRenderer renderer(scene, region, options);
  const Rgb8 sentinel{12, 34, 56};
  Framebuffer fb(64, 48, sentinel);
  for (int frame = 0; frame < 4; ++frame) {
    renderer.render_frame(frame, &fb);
  }
  const Framebuffer ref = reference_frame(scene, 3, options.trace);
  for (int y = 0; y < 48; ++y) {
    for (int x = 0; x < 64; ++x) {
      if (region.contains(x, y)) {
        EXPECT_EQ(fb.at(x, y), ref.at(x, y)) << x << "," << y;
      } else {
        EXPECT_EQ(fb.at(x, y), sentinel) << x << "," << y;
      }
    }
  }
}

TEST(CoherentRenderer, CameraCutForcesFullRender) {
  const AnimatedScene scene = two_shot_scene(6, 3);
  CoherentRenderer renderer(scene, {0, 0, scene.width(), scene.height()});
  Framebuffer fb(scene.width(), scene.height());
  for (int frame = 0; frame < 6; ++frame) {
    const FrameRenderResult r = renderer.render_frame(frame, &fb);
    if (frame == 0 || frame == 3) {
      EXPECT_TRUE(r.full_render) << "frame " << frame;
    } else {
      EXPECT_FALSE(r.full_render) << "frame " << frame;
    }
  }
}

TEST(CoherentRenderer, OutOfOrderFrameFallsBackToFullRender) {
  const AnimatedScene scene = orbit_scene(3, 8, 48, 36);
  CoherentRenderer renderer(scene, {0, 0, 48, 36});
  Framebuffer fb(48, 36);
  renderer.render_frame(0, &fb);
  renderer.render_frame(1, &fb);
  const FrameRenderResult r = renderer.render_frame(5, &fb);  // skip ahead
  EXPECT_TRUE(r.full_render);
  const Framebuffer ref = reference_frame(scene, 5, TraceOptions{});
  EXPECT_EQ(fb, ref);
}

TEST(CoherentRenderer, BlockModeMatchesFullRenderToo) {
  const AnimatedScene scene = orbit_scene(3, 4, 64, 48);
  CoherenceOptions options;
  options.block_size = 8;  // Jevans-style blocks
  CoherentRenderer renderer(scene, {0, 0, 64, 48}, options);
  Framebuffer fb(64, 48);
  for (int frame = 0; frame < 4; ++frame) {
    renderer.render_frame(frame, &fb);
    const Framebuffer ref = reference_frame(scene, frame, options.trace);
    ASSERT_EQ(fb, ref) << "frame " << frame;
  }
}

TEST(CoherentRenderer, BlockModeRecomputesAtLeastAsManyPixels) {
  const AnimatedScene scene = orbit_scene(3, 4, 64, 48);
  CoherenceOptions pixel_opts;
  CoherenceOptions block_opts;
  block_opts.block_size = 16;
  CoherentRenderer pixel_r(scene, {0, 0, 64, 48}, pixel_opts);
  CoherentRenderer block_r(scene, {0, 0, 64, 48}, block_opts);
  Framebuffer fb1(64, 48), fb2(64, 48);
  pixel_r.render_frame(0, &fb1);
  block_r.render_frame(0, &fb2);
  for (int frame = 1; frame < 4; ++frame) {
    const auto rp = pixel_r.render_frame(frame, &fb1);
    const auto rb = block_r.render_frame(frame, &fb2);
    EXPECT_GE(rb.pixels_recomputed, rp.pixels_recomputed) << "frame " << frame;
  }
}

TEST(CoherentRenderer, MovingLightForcesFullRenderAndStaysCorrect) {
  // A moving light is outside the voxel change model: every frame where the
  // light moved must be a (correct) full render.
  AnimatedScene scene = orbit_scene(3, 5, 48, 36);
  Spline path(InterpMode::kLinear);
  path.add_key(0.0, {0, 0, 0});
  path.add_key(4.0 / 15.0, {2, 0, 0});
  scene.add_light(Light::point({-3, 4, 2}, Color{0.8, 0.7, 0.6}, 0.6),
                  std::make_unique<KeyframeAnimator>(std::move(path)));

  CoherentRenderer renderer(scene, {0, 0, 48, 36});
  Framebuffer fb(48, 36);
  for (int frame = 0; frame < scene.frame_count(); ++frame) {
    const FrameRenderResult r = renderer.render_frame(frame, &fb);
    EXPECT_TRUE(r.full_render) << "frame " << frame;
    const Framebuffer ref = reference_frame(scene, frame, TraceOptions{});
    ASSERT_EQ(fb, ref) << "frame " << frame;
  }
}

TEST(CoherentRenderer, PredictDirtyIsSupersetOfActualChange) {
  const AnimatedScene scene = orbit_scene(4, 5, 64, 48);
  CoherentRenderer renderer(scene, {0, 0, 64, 48});
  Framebuffer fb(64, 48);
  renderer.render_frame(0, &fb);
  Framebuffer prev = fb;
  for (int frame = 1; frame < 5; ++frame) {
    const PixelMask predicted = renderer.predict_dirty(frame);
    renderer.render_frame(frame, &fb);
    const PixelMask actual = actual_diff_mask(prev, fb);
    EXPECT_TRUE(actual.subset_of(predicted))
        << "frame " << frame << ": "
        << actual.minus(predicted).count() << " false negatives";
    prev = fb;
  }
}

}  // namespace
}  // namespace now
