#include <gtest/gtest.h>

#include "src/geom/box.h"
#include "src/geom/cylinder.h"
#include "src/geom/disc.h"
#include "src/geom/plane.h"
#include "src/geom/sphere.h"
#include "src/geom/triangle.h"
#include "src/math/rng.h"

namespace now {
namespace {

TEST(Sphere, HitFromOutside) {
  const Sphere s({0, 0, 0}, 1.0);
  Hit hit;
  ASSERT_TRUE(s.intersect({{0, 0, 5}, {0, 0, -1}}, 1e-9, 1e9, &hit));
  EXPECT_NEAR(hit.t, 4.0, 1e-12);
  EXPECT_NEAR(hit.normal.z, 1.0, 1e-12);
  EXPECT_TRUE(hit.front_face);
}

TEST(Sphere, HitFromInside) {
  const Sphere s({0, 0, 0}, 1.0);
  Hit hit;
  ASSERT_TRUE(s.intersect({{0, 0, 0}, {0, 0, -1}}, 1e-9, 1e9, &hit));
  EXPECT_NEAR(hit.t, 1.0, 1e-12);
  EXPECT_FALSE(hit.front_face);
  // Normal opposes the ray direction.
  EXPECT_GT(dot(hit.normal, Vec3(0, 0, 1)), 0.0);
}

TEST(Sphere, MissAndRange) {
  const Sphere s({0, 0, 0}, 1.0);
  Hit hit;
  EXPECT_FALSE(s.intersect({{0, 3, 5}, {0, 0, -1}}, 1e-9, 1e9, &hit));
  // Hit exists at t=4 but range excludes it.
  EXPECT_FALSE(s.intersect({{0, 0, 5}, {0, 0, -1}}, 1e-9, 3.0, &hit));
  EXPECT_FALSE(s.intersect({{0, 0, 5}, {0, 0, -1}}, 6.01, 1e9, &hit));
}

TEST(Sphere, BoundsAndTransform) {
  const Sphere s({1, 2, 3}, 0.5);
  const Aabb b = s.bounds();
  EXPECT_EQ(b.lo, Vec3(0.5, 1.5, 2.5));
  EXPECT_EQ(b.hi, Vec3(1.5, 2.5, 3.5));

  Transform t = Transform::translate({1, 0, 0});
  t.scale = 2.0;
  auto moved = s.transformed(t);
  const auto* ms = dynamic_cast<const Sphere*>(moved.get());
  ASSERT_NE(ms, nullptr);
  EXPECT_DOUBLE_EQ(ms->radius(), 1.0);
  EXPECT_EQ(ms->center(), Vec3(3, 4, 6));
}

TEST(Plane, HitAndParallelMiss) {
  const Plane p({0, 1, 0}, 0.0);  // y = 0
  Hit hit;
  ASSERT_TRUE(p.intersect({{0, 2, 0}, {0, -1, 0}}, 1e-9, 1e9, &hit));
  EXPECT_NEAR(hit.t, 2.0, 1e-12);
  EXPECT_NEAR(hit.normal.y, 1.0, 1e-12);
  // Parallel ray misses.
  EXPECT_FALSE(p.intersect({{0, 2, 0}, {1, 0, 0}}, 1e-9, 1e9, &hit));
}

TEST(Plane, Through) {
  const Plane p = Plane::through({0, 3, 0}, {0, 2, 0});
  EXPECT_NEAR(p.d(), 3.0, 1e-12);
  EXPECT_NEAR(p.normal().length(), 1.0, 1e-12);
}

TEST(Plane, IsUnbounded) {
  const Plane p({0, 1, 0}, 0.0);
  EXPECT_FALSE(p.is_bounded());
  EXPECT_TRUE(p.bounds().empty());
}

TEST(Plane, TransformedKeepsGeometry) {
  const Plane p({0, 1, 0}, 1.0);  // y = 1
  const Transform t = Transform::translate({0, 2, 0});
  auto moved = p.transformed(t);
  Hit hit;
  // Plane should now be y = 3.
  ASSERT_TRUE(moved->intersect({{0, 5, 0}, {0, -1, 0}}, 1e-9, 1e9, &hit));
  EXPECT_NEAR(hit.t, 2.0, 1e-12);
}

TEST(Box, AxisAlignedHit) {
  const Box b = Box::from_corners({-1, -1, -1}, {1, 1, 1});
  Hit hit;
  ASSERT_TRUE(b.intersect({{5, 0, 0}, {-1, 0, 0}}, 1e-9, 1e9, &hit));
  EXPECT_NEAR(hit.t, 4.0, 1e-12);
  EXPECT_NEAR(hit.normal.x, 1.0, 1e-12);
}

TEST(Box, InsideHitReportsExitFace) {
  const Box b = Box::from_corners({-1, -1, -1}, {1, 1, 1});
  Hit hit;
  ASSERT_TRUE(b.intersect({{0, 0, 0}, {0, 1, 0}}, 1e-9, 1e9, &hit));
  EXPECT_NEAR(hit.t, 1.0, 1e-12);
  EXPECT_FALSE(hit.front_face);
}

TEST(Box, RotatedHit) {
  // 45-degree rotated box: a ray along x hits the edge-on corner closer
  // than the unrotated half-extent.
  const Box b({0, 0, 0}, {1, 1, 1}, Mat3::rotation_y(kPi / 4));
  Hit hit;
  ASSERT_TRUE(b.intersect({{5, 0, 0}, {-1, 0, 0}}, 1e-9, 1e9, &hit));
  EXPECT_NEAR(hit.t, 5.0 - std::sqrt(2.0), 1e-9);
}

TEST(Box, BoundsCoverRotation) {
  const Box b({0, 0, 0}, {1, 1, 1}, Mat3::rotation_z(kPi / 4));
  const Aabb bounds = b.bounds();
  EXPECT_NEAR(bounds.hi.x, std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(bounds.hi.y, std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(bounds.hi.z, 1.0, 1e-9);
}

TEST(Cylinder, LateralHit) {
  const Cylinder c({0, 0, 0}, {0, 2, 0}, 0.5);
  Hit hit;
  ASSERT_TRUE(c.intersect({{5, 1, 0}, {-1, 0, 0}}, 1e-9, 1e9, &hit));
  EXPECT_NEAR(hit.t, 4.5, 1e-12);
  EXPECT_NEAR(hit.normal.x, 1.0, 1e-12);
}

TEST(Cylinder, CapHit) {
  const Cylinder c({0, 0, 0}, {0, 2, 0}, 0.5);
  Hit hit;
  ASSERT_TRUE(c.intersect({{0.2, 5, 0}, {0, -1, 0}}, 1e-9, 1e9, &hit));
  EXPECT_NEAR(hit.t, 3.0, 1e-12);
  EXPECT_NEAR(hit.normal.y, 1.0, 1e-12);
}

TEST(Cylinder, MissesBeyondCaps) {
  const Cylinder c({0, 0, 0}, {0, 2, 0}, 0.5);
  Hit hit;
  // Ray passes the infinite cylinder but above the cap.
  EXPECT_FALSE(c.intersect({{5, 3, 0}, {-1, 0, 0}}, 1e-9, 1e9, &hit));
}

TEST(Cylinder, TightBounds) {
  const Cylinder c({0, 0, 0}, {0, 2, 0}, 0.5);
  const Aabb b = c.bounds();
  EXPECT_NEAR(b.lo.x, -0.5, 1e-9);
  EXPECT_NEAR(b.hi.x, 0.5, 1e-9);
  EXPECT_NEAR(b.lo.y, 0.0, 1e-9);   // axis-aligned: no radial pad along axis
  EXPECT_NEAR(b.hi.y, 2.0, 1e-9);
}

TEST(Cylinder, DiagonalBoundsAreTight) {
  const Cylinder c({0, 0, 0}, {1, 1, 0}, 0.1);
  const Aabb b = c.bounds();
  // Radial pad along x/y is r/sqrt(2), full r along z.
  EXPECT_NEAR(b.hi.z, 0.1, 1e-9);
  EXPECT_NEAR(b.hi.x, 1.0 + 0.1 / std::sqrt(2.0), 1e-9);
}

TEST(Disc, HitAndRadiusMiss) {
  const Disc d({0, 1, 0}, {0, 1, 0}, 0.5);
  Hit hit;
  ASSERT_TRUE(d.intersect({{0.3, 3, 0}, {0, -1, 0}}, 1e-9, 1e9, &hit));
  EXPECT_NEAR(hit.t, 2.0, 1e-12);
  EXPECT_FALSE(d.intersect({{0.6, 3, 0}, {0, -1, 0}}, 1e-9, 1e9, &hit));
}

TEST(Triangle, HitInsideMissOutside) {
  const Triangle tri({0, 0, 0}, {1, 0, 0}, {0, 1, 0});
  Hit hit;
  ASSERT_TRUE(tri.intersect({{0.2, 0.2, 5}, {0, 0, -1}}, 1e-9, 1e9, &hit));
  EXPECT_NEAR(hit.t, 5.0, 1e-12);
  EXPECT_FALSE(tri.intersect({{0.9, 0.9, 5}, {0, 0, -1}}, 1e-9, 1e9, &hit));
}

TEST(Mesh, BehavesLikeItsTriangles) {
  // A quad out of two triangles.
  std::vector<Vec3> verts = {{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0}};
  std::vector<int> idx = {0, 1, 2, 0, 2, 3};
  const Mesh mesh(verts, idx);
  EXPECT_EQ(mesh.triangle_count(), 2);
  Hit hit;
  ASSERT_TRUE(mesh.intersect({{0.5, 0.5, 3}, {0, 0, -1}}, 1e-9, 1e9, &hit));
  EXPECT_NEAR(hit.t, 3.0, 1e-12);
  EXPECT_FALSE(mesh.intersect({{1.5, 0.5, 3}, {0, 0, -1}}, 1e-9, 1e9, &hit));
}

TEST(Mesh, BvhMatchesBruteForceOnRandomRays) {
  // Random triangle soup; compare BVH mesh hits against per-triangle tests.
  Rng rng(21);
  std::vector<Vec3> verts;
  std::vector<int> idx;
  std::vector<Triangle> tris;
  for (int i = 0; i < 60; ++i) {
    const Vec3 a = rng.point_in_box({-2, -2, -2}, {2, 2, 2});
    const Vec3 b = a + rng.unit_vector() * 0.7;
    const Vec3 c = a + rng.unit_vector() * 0.7;
    verts.push_back(a);
    verts.push_back(b);
    verts.push_back(c);
    idx.push_back(3 * i);
    idx.push_back(3 * i + 1);
    idx.push_back(3 * i + 2);
    tris.emplace_back(a, b, c);
  }
  const Mesh mesh(verts, idx);
  for (int i = 0; i < 300; ++i) {
    const Ray ray{rng.point_in_box({-4, -4, -4}, {4, 4, 4}),
                  rng.unit_vector()};
    Hit mesh_hit;
    const bool mesh_found = mesh.intersect(ray, 1e-9, 1e9, &mesh_hit);
    Hit best;
    bool found = false;
    for (const Triangle& tri : tris) {
      Hit h;
      if (tri.intersect(ray, 1e-9, found ? best.t : 1e9, &h)) {
        best = h;
        found = true;
      }
    }
    ASSERT_EQ(mesh_found, found) << "ray " << i;
    if (found) {
      EXPECT_NEAR(mesh_hit.t, best.t, 1e-9) << "ray " << i;
    }
  }
}

TEST(AllPrimitives, CloneMatchesOriginal) {
  std::vector<std::unique_ptr<Primitive>> prims;
  prims.push_back(std::make_unique<Sphere>(Vec3{1, 0, 0}, 0.5));
  prims.push_back(std::make_unique<Plane>(Vec3{0, 1, 0}, 2.0));
  prims.push_back(std::make_unique<Box>(Box::from_corners({0, 0, 0}, {1, 2, 1})));
  prims.push_back(std::make_unique<Cylinder>(Vec3{0, 0, 0}, Vec3{0, 1, 0}, 0.3));
  prims.push_back(std::make_unique<Disc>(Vec3{0, 0, 0}, Vec3{0, 0, 1}, 1.0));
  prims.push_back(std::make_unique<Triangle>(Vec3{0, 0, 0}, Vec3{1, 0, 0}, Vec3{0, 1, 0}));

  Rng rng(5);
  for (const auto& prim : prims) {
    const auto copy = prim->clone();
    EXPECT_EQ(copy->type(), prim->type());
    for (int i = 0; i < 50; ++i) {
      const Ray ray{rng.point_in_box({-3, -3, -3}, {3, 3, 3}),
                    rng.unit_vector()};
      Hit h1, h2;
      const bool f1 = prim->intersect(ray, 1e-9, 1e9, &h1);
      const bool f2 = copy->intersect(ray, 1e-9, 1e9, &h2);
      ASSERT_EQ(f1, f2) << to_string(prim->type());
      if (f1) {
        EXPECT_DOUBLE_EQ(h1.t, h2.t);
      }
    }
  }
}

TEST(ShapeType, Names) {
  EXPECT_STREQ(to_string(ShapeType::kSphere), "sphere");
  EXPECT_STREQ(to_string(ShapeType::kMesh), "mesh");
}

}  // namespace
}  // namespace now
