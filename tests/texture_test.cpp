#include "src/trace/texture.h"

#include <gtest/gtest.h>

#include "src/math/rng.h"

namespace now {
namespace {

TEST(SolidColor, ConstantEverywhere) {
  const SolidColor tex(Color{0.2, 0.4, 0.6});
  EXPECT_EQ(tex.value({0, 0, 0}), (Color{0.2, 0.4, 0.6}));
  EXPECT_EQ(tex.value({100, -5, 3}), (Color{0.2, 0.4, 0.6}));
}

TEST(Checker, AlternatesAcrossCells) {
  const CheckerTexture tex(Color::white(), Color::black(), 1.0);
  const Color a = tex.value({0.5, 0.5, 0.5});
  const Color b = tex.value({1.5, 0.5, 0.5});
  const Color c = tex.value({2.5, 0.5, 0.5});
  EXPECT_NE(a, b);
  EXPECT_EQ(a, c);
  // Moving one cell in y or z also flips.
  EXPECT_NE(a, tex.value({0.5, 1.5, 0.5}));
  EXPECT_NE(a, tex.value({0.5, 0.5, 1.5}));
}

TEST(Checker, CellSizeScales) {
  const CheckerTexture tex(Color::white(), Color::black(), 2.0);
  EXPECT_EQ(tex.value({0.5, 0.5, 0.5}), tex.value({1.5, 0.5, 0.5}));
  EXPECT_NE(tex.value({0.5, 0.5, 0.5}), tex.value({2.5, 0.5, 0.5}));
}

TEST(Checker, NegativeCoordinatesConsistent) {
  const CheckerTexture tex(Color::white(), Color::black(), 1.0);
  // floor-based cells: [-1,0) differs from [0,1).
  EXPECT_NE(tex.value({-0.5, 0.5, 0.5}), tex.value({0.5, 0.5, 0.5}));
}

TEST(Brick, MortarLinesAreMortarColored) {
  const Color brick{0.6, 0.2, 0.1};
  const Color mortar{0.8, 0.8, 0.8};
  const BrickTexture tex(brick, mortar, 1.0, 0.5, 0.05);
  // Just above a course boundary (v in [0, 0.05)) must be mortar.
  EXPECT_EQ(tex.value({0.4, 0.01, 0}), mortar);
  // Mid-brick is a tint of the brick color (same hue ratios, not mortar).
  const Color mid = tex.value({0.4, 0.25, 0});
  EXPECT_NE(mid, mortar);
  EXPECT_GT(mid.r, mid.g);  // brick stays reddish
}

TEST(Brick, RunningBondOffsetsAlternateCourses) {
  const Color brick{0.6, 0.2, 0.1};
  const Color mortar{0.9, 0.9, 0.9};
  const BrickTexture tex(brick, mortar, 1.0, 0.5, 0.04);
  // A vertical mortar joint at u=0 in course 0 is brick interior in
  // course 1 (shifted half a brick).
  const Color course0 = tex.value({0.01, 0.25, 0});
  const Color course1 = tex.value({0.01, 0.75, 0});
  EXPECT_EQ(course0, mortar);
  EXPECT_NE(course1, mortar);
}

TEST(ValueNoise, RangeAndDeterminism) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const Vec3 p = rng.point_in_box({-20, -20, -20}, {20, 20, 20});
    const double v = value_noise(p);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    EXPECT_DOUBLE_EQ(v, value_noise(p));
  }
}

TEST(ValueNoise, SmoothAtFineScale) {
  // Nearby points have nearby values (C1 interpolation).
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const Vec3 p = rng.point_in_box({-5, -5, -5}, {5, 5, 5});
    const double v0 = value_noise(p);
    const double v1 = value_noise(p + Vec3{1e-4, 0, 0});
    EXPECT_LT(std::fabs(v1 - v0), 0.01);
  }
}

TEST(Turbulence, RangeAndOctaves) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Vec3 p = rng.point_in_box({-10, -10, -10}, {10, 10, 10});
    const double t = turbulence(p, 4);
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
  }
  EXPECT_DOUBLE_EQ(turbulence({1, 2, 3}, 0), 0.0);
}

TEST(Marble, InterpolatesBetweenColors) {
  const MarbleTexture tex(Color::black(), Color::white(), 2.0, 1.0);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const Vec3 p = rng.point_in_box({-3, -3, -3}, {3, 3, 3});
    const Color c = tex.value(p);
    EXPECT_GE(c.r, 0.0);
    EXPECT_LE(c.r, 1.0);
    EXPECT_DOUBLE_EQ(c.r, c.g);  // gray ramp between black and white
  }
}

TEST(AllTextures, CloneProducesEqualValues) {
  std::vector<std::shared_ptr<Texture>> textures = {
      std::make_shared<SolidColor>(Color{0.1, 0.2, 0.3}),
      std::make_shared<CheckerTexture>(Color::white(), Color::black(), 0.7),
      std::make_shared<BrickTexture>(Color{0.5, 0.2, 0.1},
                                     Color{0.7, 0.7, 0.7}, 0.6, 0.25, 0.03),
      std::make_shared<MarbleTexture>(Color::black(), Color::white(), 3.0, 1.5),
  };
  Rng rng(5);
  for (const auto& tex : textures) {
    const auto copy = tex->clone();
    for (int i = 0; i < 100; ++i) {
      const Vec3 p = rng.point_in_box({-4, -4, -4}, {4, 4, 4});
      EXPECT_EQ(tex->value(p), copy->value(p));
    }
  }
}

}  // namespace
}  // namespace now
