// Metrics registry: exact concurrent aggregation, frozen histogram bucket
// layouts, allocation-free no-op instruments when disabled, and
// deterministic JSON rendering.
#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "src/obs/event_trace.h"

// Global allocation counter: the disabled-registry test asserts the hot path
// performs zero heap allocations. Counting in operator new keeps the test
// independent of allocator internals (works under ASan too, which wraps
// malloc underneath these replacements).
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// GCC flags free() inside a replaced operator delete as a mismatched pair
// when it can trace the pointer to a new-expression; with new and delete
// both replaced on top of malloc/free the pairing is consistent.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace now {
namespace {

TEST(MetricsRegistryTest, ConcurrentIncrementsSumExactly) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("test.hits");
  Gauge& gauge = registry.gauge("test.level");

  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        counter.inc();
        gauge.add(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
  // Gauge::add is a CAS loop: lossless under contention, and the sum of
  // 80,000 ones is exactly representable in a double.
  EXPECT_EQ(gauge.value(), static_cast<double>(kThreads) * kIncrements);

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("test.hits"),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistryTest, ConcurrentHistogramObservations) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("test.latency", {1.0, 2.0, 4.0});

  constexpr int kThreads = 8;
  constexpr int kObservations = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kObservations; ++i) {
        hist.observe(static_cast<double>(t % 4) + 0.5);  // 0.5/1.5/2.5/3.5
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(hist.count(),
            static_cast<std::uint64_t>(kThreads) * kObservations);
  const std::vector<std::uint64_t> counts = hist.counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u * kObservations);  // 0.5 x2 threads
  EXPECT_EQ(counts[1], 2u * kObservations);  // 1.5
  EXPECT_EQ(counts[2], 4u * kObservations);  // 2.5 and 3.5 (<= 4.0)
  EXPECT_EQ(counts[3], 0u);
}

TEST(MetricsRegistryTest, HistogramBucketBoundariesAreStable) {
  // The first call for a name freezes the layout; later calls with other
  // bounds return the same instrument.
  MetricsRegistry registry;
  Histogram& a = registry.histogram("h", {1.0, 10.0});
  Histogram& b = registry.histogram("h", {5.0});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.bounds(), (std::vector<double>{1.0, 10.0}));

  // Inclusive upper bounds: a value exactly on a boundary lands in that
  // bucket, not the next one.
  a.observe(1.0);
  a.observe(10.0);
  a.observe(10.000001);
  const std::vector<std::uint64_t> counts = a.counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);  // overflow

  // The shared default layouts are fixed across runs and PRs: spot-check
  // their anchors instead of hard-coding entire arrays.
  const std::vector<double>& secs = Histogram::default_seconds_bounds();
  ASSERT_FALSE(secs.empty());
  EXPECT_DOUBLE_EQ(secs.front(), 1e-3);
  const std::vector<double>& bytes = Histogram::default_bytes_bounds();
  ASSERT_FALSE(bytes.empty());
  EXPECT_DOUBLE_EQ(bytes.front(), 64.0);
  for (std::size_t i = 1; i < secs.size(); ++i) EXPECT_GT(secs[i], secs[i - 1]);
  for (std::size_t i = 1; i < bytes.size(); ++i) {
    EXPECT_GT(bytes[i], bytes[i - 1]);
  }
}

TEST(MetricsRegistryTest, DisabledRegistryIsAllocationFreeNoOp) {
  MetricsRegistry registry(false);
  EXPECT_FALSE(registry.enabled());

  // Warm up: the shared no-op instruments are created on first touch (and
  // function-local static guards may allocate once), before measuring.
  registry.counter("warmup").inc();
  registry.gauge("warmup").set(1.0);
  registry.histogram("warmup").observe(1.0);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    registry.counter("noop.counter").inc();
    registry.gauge("noop.gauge").set(static_cast<double>(i));
    registry.histogram("noop.hist").observe(static_cast<double>(i));
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);

  // Nothing recorded above may surface in the snapshot.
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.counter("noop.counter"), 0u);
  EXPECT_EQ(snap.gauge("noop.gauge"), 0.0);
}

TEST(MetricsSnapshotTest, JsonIsValidAndDeterministic) {
  MetricsRegistry registry;
  registry.counter("b.count").inc(42);
  registry.counter("a.count").inc(7);
  registry.gauge("speed \"quoted\"\n").set(0.125);
  registry.histogram("lat", {0.5, 1.0}).observe(0.25);

  const std::string json = registry.snapshot().to_json();
  std::string error;
  EXPECT_TRUE(json_syntax_ok(json, &error)) << error << "\n" << json;
  // Deterministic: same registry state, identical bytes.
  EXPECT_EQ(json, registry.snapshot().to_json());
  // Names are sorted in the output.
  EXPECT_LT(json.find("a.count"), json.find("b.count"));
}

TEST(MetricsSnapshotTest, EmptyRegistrySnapshotsToValidJson) {
  MetricsRegistry registry;
  const std::string json = registry.snapshot().to_json();
  std::string error;
  EXPECT_TRUE(json_syntax_ok(json, &error)) << error;
}

}  // namespace
}  // namespace now
