// Trace exporter and utilization report, end to end: a sim-backend farm run
// produces a valid Chrome trace (monotone per-rank timestamps, balanced B/E
// spans), two identical runs export byte-identical traces, and the
// utilization report's per-rank fractions add up.
#include "src/obs/event_trace.h"

#include <gtest/gtest.h>

#include "src/obs/report.h"
#include "src/par/render_farm.h"
#include "src/scene/builtin_scenes.h"

namespace now {
namespace {

FarmConfig traced_config() {
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds = {1.0, 0.5, 0.5};
  config.partition.scheme = PartitionScheme::kFrameDivision;
  config.partition.block_size = 32;
  config.obs.trace = true;
  return config;
}

TEST(TraceExportTest, SimFarmTraceIsValidChromeJson) {
  const AnimatedScene scene = orbit_scene(4, 8, 64, 48);
  const FarmResult result = render_farm(scene, traced_config());

  ASSERT_FALSE(result.trace_events.empty());
  const std::string json = chrome_trace_json(result.trace_events);
  std::string error;
  EXPECT_TRUE(validate_chrome_trace(json, &error)) << error;

  // The instrumented layers all contributed: frame spans from the workers,
  // net events from the runtime, scheduling instants from the master.
  bool saw_frame = false, saw_net = false, saw_sched = false;
  for (const TraceEvent& ev : result.trace_events) {
    if (std::string(ev.cat) == "frame") saw_frame = true;
    if (std::string(ev.cat) == "net") saw_net = true;
    if (std::string(ev.cat) == "sched") saw_sched = true;
  }
  EXPECT_TRUE(saw_frame);
  EXPECT_TRUE(saw_net);
  EXPECT_TRUE(saw_sched);
}

TEST(TraceExportTest, SimTraceIsByteIdenticalAcrossRuns) {
  const AnimatedScene scene = orbit_scene(4, 6, 48, 36);
  const FarmResult a = render_farm(scene, traced_config());
  const FarmResult b = render_farm(scene, traced_config());
  EXPECT_EQ(chrome_trace_json(a.trace_events),
            chrome_trace_json(b.trace_events));
  EXPECT_EQ(a.metrics.to_json(), b.metrics.to_json());
}

TEST(TraceExportTest, ValidatorRejectsBrokenTraces) {
  std::string error;
  EXPECT_FALSE(validate_chrome_trace("not json", &error));
  EXPECT_FALSE(validate_chrome_trace("{}", &error));  // no traceEvents

  // Unbalanced B without E.
  EventTracer tracer(true);
  tracer.begin(1, "frame", "frame.render", 1.0);
  EXPECT_FALSE(
      validate_chrome_trace(chrome_trace_json(tracer.sorted_events()), &error));
  EXPECT_FALSE(error.empty());

  // Balanced span + instant + complete validates.
  tracer.end(1, "frame", "frame.render", 2.0);
  tracer.instant(0, "net", "net.recv", 2.5);
  tracer.complete(0, "net", "net.send", 0.5, 0.25);
  EXPECT_TRUE(
      validate_chrome_trace(chrome_trace_json(tracer.sorted_events()), &error))
      << error;
}

TEST(TraceExportTest, UtilizationFractionsSumToOne) {
  const AnimatedScene scene = orbit_scene(4, 8, 64, 48);
  const FarmResult result = render_farm(scene, traced_config());

  const UtilizationReport& u = result.utilization;
  ASSERT_FALSE(u.empty());
  ASSERT_EQ(u.ranks.size(), 4u);  // master + 3 workers
  EXPECT_GT(u.elapsed_seconds, 0.0);
  int rendering_ranks = 0;
  for (const RankUtilization& r : u.ranks) {
    EXPECT_NEAR(r.busy_frac + r.comm_frac + r.idle_frac, 1.0, 0.01)
        << "rank " << r.rank;
    EXPECT_GE(r.busy_frac, 0.0);
    EXPECT_GE(r.comm_frac, 0.0);
    EXPECT_GE(r.idle_frac, 0.0);
    if (r.rank > 0 && r.frames > 0) ++rendering_ranks;
  }
  EXPECT_GT(rendering_ranks, 0);
  EXPECT_GE(u.load_imbalance, 1.0);
  // Frame coherence recomputes only changed pixels after frame 0.
  EXPECT_GT(u.coherence_savings, 0.0);
  EXPECT_FALSE(u.to_text().empty());
}

TEST(TraceExportTest, ThreadsBackendPopulatesUnifiedMetrics) {
  const AnimatedScene scene = orbit_scene(4, 4, 48, 36);
  FarmConfig config;
  config.backend = FarmBackend::kThreads;
  config.workers = 2;
  config.obs.trace = true;
  const FarmResult result = render_farm(scene, config);

  // The unified snapshot is the one reporting path for every backend.
  EXPECT_GT(result.metrics.counter("master.frame_results"), 0u);
  EXPECT_GT(result.metrics.counter("worker.frames_rendered"), 0u);
  EXPECT_GT(result.metrics.counter("net.messages"), 0u);
  EXPECT_GT(result.metrics.counter("net.bytes"), 0u);
  const auto it = result.metrics.histograms.find("worker.frame_seconds");
  ASSERT_NE(it, result.metrics.histograms.end());
  EXPECT_GT(it->second.count, 0u);

  // Wall-clock traces validate too (sorted per rank before export).
  ASSERT_FALSE(result.trace_events.empty());
  std::string error;
  EXPECT_TRUE(
      validate_chrome_trace(chrome_trace_json(result.trace_events), &error))
      << error;
}

TEST(TraceExportTest, MetricsDisabledYieldsEmptySnapshot) {
  const AnimatedScene scene = orbit_scene(4, 4, 48, 36);
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds = {1.0, 1.0};
  config.obs.metrics = false;
  const FarmResult result = render_farm(scene, config);
  EXPECT_TRUE(result.metrics.empty());
  EXPECT_TRUE(result.trace_events.empty());  // trace off by default
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
}

}  // namespace
}  // namespace now
