#include "src/trace/camera.h"

#include <gtest/gtest.h>

namespace now {
namespace {

TEST(Camera, CenterPixelLooksForward) {
  const Camera cam({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 60.0, 2.0);
  // Center of a 2x2 image between the four pixels; use an odd image so a
  // pixel center coincides with the optical axis.
  const Ray ray = cam.generate_ray(1, 1, 3, 3);
  EXPECT_NEAR(ray.direction.x, 0.0, 1e-12);
  EXPECT_NEAR(ray.direction.y, 0.0, 1e-12);
  EXPECT_NEAR(ray.direction.z, -1.0, 1e-12);
  EXPECT_EQ(ray.origin, Vec3(0, 0, 5));
}

TEST(Camera, ImageYGrowsDownward) {
  const Camera cam({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 60.0, 1.0);
  const Ray top = cam.generate_ray(1, 0, 3, 3);
  const Ray bottom = cam.generate_ray(1, 2, 3, 3);
  EXPECT_GT(top.direction.y, 0.0);
  EXPECT_LT(bottom.direction.y, 0.0);
}

TEST(Camera, ImageXGrowsRight) {
  const Camera cam({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 60.0, 1.0);
  const Ray left = cam.generate_ray(0, 1, 3, 3);
  const Ray right = cam.generate_ray(2, 1, 3, 3);
  // Looking down -z with +y up, +x (screen right) is world +x.
  EXPECT_LT(left.direction.x, 0.0);
  EXPECT_GT(right.direction.x, 0.0);
}

TEST(Camera, FovControlsSpread) {
  const Camera narrow({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 20.0, 1.0);
  const Camera wide({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 90.0, 1.0);
  const Ray n = narrow.generate_ray(0, 0, 2, 2);
  const Ray w = wide.generate_ray(0, 0, 2, 2);
  EXPECT_LT(std::fabs(n.direction.x), std::fabs(w.direction.x));
}

TEST(Camera, RaysAreUnitLength) {
  const Camera cam({1, 2, 3}, {-2, 0, 1}, {0, 1, 0}, 45.0, 1.5);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      EXPECT_NEAR(cam.generate_ray(x, y, 4, 4).direction.length(), 1.0, 1e-12);
    }
  }
}

TEST(Camera, SupersamplesStayInsidePixel) {
  const Camera cam({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 60.0, 1.0);
  // The four 2x2 supersamples of a pixel must bracket its center ray.
  const Ray center = cam.generate_ray(3, 2, 8, 8);
  const Ray corner_lo = cam.generate_ray(3, 2, 8, 8, 0, 0, 2);
  const Ray corner_hi = cam.generate_ray(3, 2, 8, 8, 1, 1, 2);
  EXPECT_LT(corner_lo.direction.x, center.direction.x);
  EXPECT_GT(corner_hi.direction.x, center.direction.x);
  EXPECT_GT(corner_lo.direction.y, center.direction.y);  // sy=0 is upper
  EXPECT_LT(corner_hi.direction.y, center.direction.y);
}

TEST(Camera, EqualityDetectsMovement) {
  const Camera a({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 60.0, 1.0);
  const Camera b({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 60.0, 1.0);
  const Camera moved({0, 0.1, 5}, {0, 0, 0}, {0, 1, 0}, 60.0, 1.0);
  const Camera zoomed({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 50.0, 1.0);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, moved);
  EXPECT_NE(a, zoomed);
}

TEST(Camera, AccessorsReflectSetup) {
  const Camera cam({0, 1, 5}, {0, 1, 0}, {0, 1, 0}, 40.0, 1.25);
  EXPECT_EQ(cam.position(), Vec3(0, 1, 5));
  EXPECT_NEAR(cam.forward().z, -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(cam.vfov_degrees(), 40.0);
  EXPECT_DOUBLE_EQ(cam.aspect(), 1.25);
}

}  // namespace
}  // namespace now
