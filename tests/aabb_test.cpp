#include "src/math/aabb.h"

#include <gtest/gtest.h>

#include "src/math/rng.h"

namespace now {
namespace {

TEST(Aabb, DefaultIsEmpty) {
  const Aabb box;
  EXPECT_TRUE(box.empty());
  EXPECT_DOUBLE_EQ(box.volume(), 0.0);
  EXPECT_DOUBLE_EQ(box.surface_area(), 0.0);
}

TEST(Aabb, AbsorbPoints) {
  Aabb box;
  box.absorb({1, 2, 3});
  EXPECT_FALSE(box.empty());
  EXPECT_EQ(box.lo, Vec3(1, 2, 3));
  EXPECT_EQ(box.hi, Vec3(1, 2, 3));
  box.absorb({-1, 5, 0});
  EXPECT_EQ(box.lo, Vec3(-1, 2, 0));
  EXPECT_EQ(box.hi, Vec3(1, 5, 3));
}

TEST(Aabb, AbsorbEmptyBoxIsNoop) {
  Aabb box{{0, 0, 0}, {1, 1, 1}};
  box.absorb(Aabb{});
  EXPECT_EQ(box.lo, Vec3(0, 0, 0));
  EXPECT_EQ(box.hi, Vec3(1, 1, 1));
}

TEST(Aabb, ContainsAndOverlaps) {
  const Aabb box{{0, 0, 0}, {2, 2, 2}};
  EXPECT_TRUE(box.contains({1, 1, 1}));
  EXPECT_TRUE(box.contains({0, 0, 0}));  // boundary inclusive
  EXPECT_FALSE(box.contains({3, 1, 1}));
  EXPECT_TRUE(box.overlaps(Aabb{{1, 1, 1}, {3, 3, 3}}));
  EXPECT_TRUE(box.overlaps(Aabb{{2, 0, 0}, {3, 1, 1}}));  // touching counts
  EXPECT_FALSE(box.overlaps(Aabb{{2.1, 0, 0}, {3, 1, 1}}));
}

TEST(Aabb, VolumeSurfaceCenter) {
  const Aabb box{{0, 0, 0}, {2, 3, 4}};
  EXPECT_DOUBLE_EQ(box.volume(), 24.0);
  EXPECT_DOUBLE_EQ(box.surface_area(), 2.0 * (6 + 12 + 8));
  EXPECT_EQ(box.center(), Vec3(1, 1.5, 2));
  EXPECT_EQ(box.extent(), Vec3(2, 3, 4));
}

TEST(Aabb, Padded) {
  const Aabb box = Aabb{{0, 0, 0}, {1, 1, 1}}.padded(0.5);
  EXPECT_EQ(box.lo, Vec3(-0.5, -0.5, -0.5));
  EXPECT_EQ(box.hi, Vec3(1.5, 1.5, 1.5));
}

TEST(Aabb, RayIntersectBasic) {
  const Aabb box{{0, 0, 0}, {1, 1, 1}};
  double t0, t1;
  const Ray ray{{-1, 0.5, 0.5}, {1, 0, 0}};
  ASSERT_TRUE(box.intersect(ray, 0.0, kRayInfinity, &t0, &t1));
  EXPECT_DOUBLE_EQ(t0, 1.0);
  EXPECT_DOUBLE_EQ(t1, 2.0);
}

TEST(Aabb, RayIntersectMiss) {
  const Aabb box{{0, 0, 0}, {1, 1, 1}};
  const Ray ray{{-1, 2.0, 0.5}, {1, 0, 0}};
  EXPECT_FALSE(box.intersect(ray, 0.0, kRayInfinity, nullptr, nullptr));
}

TEST(Aabb, RayStartingInsideReportsClampedEntry) {
  const Aabb box{{0, 0, 0}, {1, 1, 1}};
  double t0, t1;
  const Ray ray{{0.5, 0.5, 0.5}, {0, 0, 1}};
  ASSERT_TRUE(box.intersect(ray, 0.0, kRayInfinity, &t0, &t1));
  EXPECT_DOUBLE_EQ(t0, 0.0);
  EXPECT_DOUBLE_EQ(t1, 0.5);
}

TEST(Aabb, RayIntersectRespectsRange) {
  const Aabb box{{0, 0, 0}, {1, 1, 1}};
  const Ray ray{{-1, 0.5, 0.5}, {1, 0, 0}};
  // The box lies beyond t_max.
  EXPECT_FALSE(box.intersect(ray, 0.0, 0.5, nullptr, nullptr));
  // The box lies before t_min.
  EXPECT_FALSE(box.intersect(ray, 3.0, kRayInfinity, nullptr, nullptr));
}

TEST(Aabb, RayIntersectNegativeDirection) {
  const Aabb box{{0, 0, 0}, {1, 1, 1}};
  double t0, t1;
  const Ray ray{{2, 0.5, 0.5}, {-1, 0, 0}};
  ASSERT_TRUE(box.intersect(ray, 0.0, kRayInfinity, &t0, &t1));
  EXPECT_DOUBLE_EQ(t0, 1.0);
  EXPECT_DOUBLE_EQ(t1, 2.0);
}

TEST(Aabb, RandomRaysThroughCenterAlwaysHit) {
  Rng rng(7);
  const Aabb box{{-1, -1, -1}, {1, 1, 1}};
  for (int i = 0; i < 200; ++i) {
    const Vec3 origin = rng.unit_vector() * 10.0;
    const Vec3 target = rng.point_in_box({-0.5, -0.5, -0.5}, {0.5, 0.5, 0.5});
    const Ray ray{origin, (target - origin).normalized()};
    EXPECT_TRUE(box.intersect(ray, 0.0, kRayInfinity, nullptr, nullptr))
        << "iteration " << i;
  }
}

TEST(Aabb, United) {
  const Aabb u = Aabb::united({{0, 0, 0}, {1, 1, 1}}, {{2, 2, 2}, {3, 3, 3}});
  EXPECT_EQ(u.lo, Vec3(0, 0, 0));
  EXPECT_EQ(u.hi, Vec3(3, 3, 3));
}

TEST(Aabb, OfPoints) {
  const Vec3 pts[3] = {{1, 5, 2}, {-1, 0, 3}, {4, 2, -2}};
  const Aabb box = Aabb::of_points(pts, 3);
  EXPECT_EQ(box.lo, Vec3(-1, 0, -2));
  EXPECT_EQ(box.hi, Vec3(4, 5, 3));
}

}  // namespace
}  // namespace now
