#include "src/core/coherence_grid.h"

#include <gtest/gtest.h>

namespace now {
namespace {

VoxelGrid small_grid() {
  return VoxelGrid({{0, 0, 0}, {4, 4, 4}}, 4, 4, 4);
}

TEST(CoherenceGrid, MarkAndCollect) {
  CoherenceGrid grid(small_grid(), {0, 0, 8, 8});
  grid.mark(0, 1, 2);
  grid.mark(0, 3, 4);
  grid.mark(5, 1, 2);
  PixelMask mask(8, 8);
  grid.collect_pixels({0}, &mask);
  EXPECT_EQ(mask.count(), 2);
  EXPECT_TRUE(mask.at(1, 2));
  EXPECT_TRUE(mask.at(3, 4));
  mask = PixelMask(8, 8);
  grid.collect_pixels({5}, &mask);
  EXPECT_EQ(mask.count(), 1);
  mask = PixelMask(8, 8);
  grid.collect_pixels({7}, &mask);
  EXPECT_EQ(mask.count(), 0);
}

TEST(CoherenceGrid, BeginPixelRetiresMarks) {
  CoherenceGrid grid(small_grid(), {0, 0, 8, 8});
  grid.mark(0, 1, 1);
  grid.mark(3, 1, 1);
  grid.begin_pixel(1, 1);  // recompute: old paths invalid
  PixelMask mask(8, 8);
  grid.collect_pixels({0, 3}, &mask);
  EXPECT_EQ(mask.count(), 0);
  // New marks after the bump are live.
  grid.mark(2, 1, 1);
  grid.collect_pixels({2}, &mask);
  EXPECT_EQ(mask.count(), 1);
}

TEST(CoherenceGrid, OtherPixelsUnaffectedByRetirement) {
  CoherenceGrid grid(small_grid(), {0, 0, 8, 8});
  grid.mark(0, 1, 1);
  grid.mark(0, 2, 2);
  grid.begin_pixel(1, 1);
  PixelMask mask(8, 8);
  grid.collect_pixels({0}, &mask);
  EXPECT_EQ(mask.count(), 1);
  EXPECT_TRUE(mask.at(2, 2));
}

TEST(CoherenceGrid, RegionLocalPixels) {
  // Region offset from the image origin: marks use full-image coordinates.
  CoherenceGrid grid(small_grid(), {4, 6, 3, 2});
  grid.mark(1, 5, 7);
  PixelMask mask(8, 8);
  grid.collect_pixels({1}, &mask);
  EXPECT_TRUE(mask.at(5, 7));
  EXPECT_EQ(mask.count(), 1);
}

TEST(CoherenceGrid, DuplicateConsecutiveMarksCollapse) {
  CoherenceGrid grid(small_grid(), {0, 0, 8, 8});
  grid.mark(0, 1, 1);
  grid.mark(0, 1, 1);
  grid.mark(0, 1, 1);
  EXPECT_EQ(grid.stats().total_marks, 1);
}

TEST(CoherenceGrid, StatsTrackLiveAndTotal) {
  CoherenceGrid grid(small_grid(), {0, 0, 8, 8});
  grid.mark(0, 1, 1);
  grid.mark(1, 1, 1);
  grid.mark(2, 2, 2);
  EXPECT_EQ(grid.stats().live_marks, 3);
  EXPECT_EQ(grid.stats().total_marks, 3);
  grid.begin_pixel(1, 1);
  EXPECT_EQ(grid.stats().live_marks, 1);
  EXPECT_EQ(grid.stats().total_marks, 3);  // stale entries still stored
  EXPECT_GT(grid.stats().bytes(), 0);
}

TEST(CoherenceGrid, CollectCompactsScannedLists) {
  CoherenceGrid grid(small_grid(), {0, 0, 8, 8});
  grid.mark(0, 1, 1);
  grid.mark(0, 2, 2);
  grid.begin_pixel(1, 1);
  PixelMask mask(8, 8);
  grid.collect_pixels({0}, &mask);
  EXPECT_EQ(grid.stats().total_marks, 1);  // stale entry dropped in passing
}

TEST(CoherenceGrid, MaybeCompactRemovesStaleMarks) {
  CoherenceGrid grid(small_grid(), {0, 0, 8, 8});
  for (int i = 0; i < 10; ++i) grid.mark(i, i % 8, i / 8);
  for (int i = 0; i < 8; ++i) grid.begin_pixel(i, 0);
  EXPECT_FALSE(grid.maybe_compact(0.95));  // threshold not reached
  EXPECT_TRUE(grid.maybe_compact(0.5));
  EXPECT_EQ(grid.stats().total_marks, grid.stats().live_marks);
  EXPECT_EQ(grid.stats().compactions, 1);
}

TEST(CoherenceGrid, ResetClearsEverything) {
  CoherenceGrid grid(small_grid(), {0, 0, 8, 8});
  grid.mark(0, 1, 1);
  grid.begin_pixel(1, 1);
  grid.mark(0, 1, 1);
  grid.reset();
  EXPECT_EQ(grid.stats().total_marks, 0);
  EXPECT_EQ(grid.stats().live_marks, 0);
  PixelMask mask(8, 8);
  grid.collect_pixels({0}, &mask);
  EXPECT_EQ(mask.count(), 0);
  // Fresh marks after reset work normally.
  grid.mark(0, 3, 3);
  grid.collect_pixels({0}, &mask);
  EXPECT_EQ(mask.count(), 1);
}

TEST(CoherenceGrid, EpochReuseAfterRecompute) {
  // A pixel recomputed twice: only the newest generation of marks counts.
  CoherenceGrid grid(small_grid(), {0, 0, 8, 8});
  grid.mark(0, 1, 1);   // generation 0
  grid.begin_pixel(1, 1);
  grid.mark(1, 1, 1);   // generation 1
  grid.begin_pixel(1, 1);
  grid.mark(2, 1, 1);   // generation 2
  PixelMask mask(8, 8);
  grid.collect_pixels({0, 1}, &mask);
  EXPECT_EQ(mask.count(), 0);
  grid.collect_pixels({2}, &mask);
  EXPECT_EQ(mask.count(), 1);
}

}  // namespace
}  // namespace now
