// End-to-end farm tests: every backend × partitioning scheme must assemble
// the exact same frames a serial render produces.
#include "src/par/render_farm.h"

#include <gtest/gtest.h>

#include "src/image/image_io.h"
#include "src/par/serial.h"
#include "src/scene/builtin_scenes.h"

namespace now {
namespace {

std::vector<Framebuffer> reference_frames(const AnimatedScene& scene,
                                          const TraceOptions& trace) {
  std::vector<Framebuffer> out;
  for (int f = 0; f < scene.frame_count(); ++f) {
    out.push_back(
        render_world(scene.world_at(f), scene.width(), scene.height(), trace));
  }
  return out;
}

void expect_frames_equal(const std::vector<Framebuffer>& got,
                         const std::vector<Framebuffer>& want,
                         const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t f = 0; f < got.size(); ++f) {
    ASSERT_EQ(got[f], want[f]) << label << " frame " << f;
  }
}

struct FarmCase {
  FarmBackend backend;
  PartitionScheme scheme;
  bool coherence;
  bool adaptive;
  int workers;
};

std::ostream& operator<<(std::ostream& os, const FarmCase& c) {
  return os << to_string(c.backend) << "/" << to_string(c.scheme)
            << (c.coherence ? "/fc" : "/nofc")
            << (c.adaptive ? "/adaptive" : "/static") << "/w" << c.workers;
}

class FarmMatrix : public ::testing::TestWithParam<FarmCase> {};

TEST_P(FarmMatrix, FramesMatchSerialReference) {
  const FarmCase& fc = GetParam();
  const AnimatedScene scene = orbit_scene(4, 8, 64, 48);

  FarmConfig config;
  config.backend = fc.backend;
  config.workers = fc.workers;
  if (fc.backend == FarmBackend::kSim) {
    config.worker_speeds.assign(static_cast<std::size_t>(fc.workers), 1.0);
    if (fc.workers >= 2) config.worker_speeds[0] = 2.0;  // heterogeneous
  }
  config.partition.scheme = fc.scheme;
  config.partition.block_size = 16;
  config.partition.hybrid_frames = 3;
  config.partition.adaptive = fc.adaptive;
  config.coherence.enabled = fc.coherence;

  const FarmResult result = render_farm(scene, config);
  const auto ref = reference_frames(scene, config.coherence.trace);

  std::ostringstream label;
  label << fc;
  expect_frames_equal(result.frames, ref, label.str());
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  EXPECT_GT(result.elapsed_seconds, 0.0);
  EXPECT_GT(result.master.rays_total, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, FarmMatrix,
    ::testing::Values(
        // Simulated NOW: all schemes, with and without coherence.
        FarmCase{FarmBackend::kSim, PartitionScheme::kSequenceDivision, true, true, 3},
        FarmCase{FarmBackend::kSim, PartitionScheme::kSequenceDivision, true, false, 3},
        FarmCase{FarmBackend::kSim, PartitionScheme::kSequenceDivision, false, true, 3},
        FarmCase{FarmBackend::kSim, PartitionScheme::kFrameDivision, true, true, 3},
        FarmCase{FarmBackend::kSim, PartitionScheme::kFrameDivision, false, true, 3},
        FarmCase{FarmBackend::kSim, PartitionScheme::kHybrid, true, true, 3},
        FarmCase{FarmBackend::kSim, PartitionScheme::kHybrid, false, false, 4},
        FarmCase{FarmBackend::kSim, PartitionScheme::kFrameDivision, true, true, 1},
        FarmCase{FarmBackend::kSim, PartitionScheme::kSequenceDivision, true, true, 8},
        // Real threads.
        FarmCase{FarmBackend::kThreads, PartitionScheme::kSequenceDivision, true, true, 3},
        FarmCase{FarmBackend::kThreads, PartitionScheme::kFrameDivision, true, true, 3},
        FarmCase{FarmBackend::kThreads, PartitionScheme::kHybrid, false, true, 2},
        // Loopback TCP sockets.
        FarmCase{FarmBackend::kTcp, PartitionScheme::kFrameDivision, true, true, 3},
        FarmCase{FarmBackend::kTcp, PartitionScheme::kSequenceDivision, true, true, 2}));

TEST(RenderFarm, SimBackendIsDeterministic) {
  const AnimatedScene scene = orbit_scene(3, 6, 48, 36);
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds = {1.0, 0.5, 0.5};
  config.partition.scheme = PartitionScheme::kFrameDivision;
  config.partition.block_size = 16;

  const FarmResult a = render_farm(scene, config);
  const FarmResult b = render_farm(scene, config);
  EXPECT_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(a.runtime.messages, b.runtime.messages);
  EXPECT_EQ(a.runtime.bytes, b.runtime.bytes);
  EXPECT_EQ(a.master.rays_total, b.master.rays_total);
  expect_frames_equal(a.frames, b.frames, "determinism");
}

TEST(RenderFarm, CoherenceReducesRaysAndTime) {
  const AnimatedScene scene = orbit_scene(3, 8, 64, 48);
  FarmConfig with_fc;
  with_fc.backend = FarmBackend::kSim;
  with_fc.worker_speeds = {1.0, 0.5, 0.5};
  with_fc.partition.scheme = PartitionScheme::kFrameDivision;
  with_fc.partition.block_size = 16;
  FarmConfig without_fc = with_fc;
  without_fc.coherence.enabled = false;

  const FarmResult fc = render_farm(scene, with_fc);
  const FarmResult nofc = render_farm(scene, without_fc);
  EXPECT_LT(fc.master.rays_total, nofc.master.rays_total);
  EXPECT_LT(fc.elapsed_seconds, nofc.elapsed_seconds);
}

TEST(RenderFarm, SparseReturnsSendFewerBytes) {
  const AnimatedScene scene = orbit_scene(3, 8, 64, 48);
  FarmConfig sparse;
  sparse.backend = FarmBackend::kSim;
  sparse.worker_speeds = {1.0, 1.0};
  sparse.partition.scheme = PartitionScheme::kFrameDivision;
  sparse.partition.block_size = 32;
  FarmConfig dense = sparse;
  dense.sparse_returns = false;

  const FarmResult a = render_farm(scene, sparse);
  const FarmResult b = render_farm(scene, dense);
  EXPECT_LT(a.runtime.bytes, b.runtime.bytes);
  expect_frames_equal(a.frames, b.frames, "sparse-vs-dense");
}

TEST(RenderFarm, AdaptiveSplitsHappenUnderHeterogeneity) {
  // One fast and one very slow worker on sequence division: the fast worker
  // finishes its half and must steal from the slow one.
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds = {4.0, 0.25};
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = true;
  config.partition.min_split_frames = 2;

  const FarmResult result = render_farm(scene, config);
  EXPECT_GT(result.master.adaptive_splits, 0);
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "adaptive");
}

TEST(RenderFarm, PaperSpeedMixRebalancesAndStaysExact) {
  // The paper's machine mix — one fast SGI and two at half speed — on
  // sequence division: the fast worker must steal work, and the stolen
  // ranges' full-render restarts must not perturb a single pixel.
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds = {1.0, 0.5, 0.5};
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = true;
  config.partition.min_split_frames = 2;

  const FarmResult result = render_farm(scene, config);
  EXPECT_GT(result.master.adaptive_splits, 0);
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "paper-speed-mix");
}

TEST(RenderFarm, ValidatesConfigUpFront) {
  const AnimatedScene scene = orbit_scene(2, 4, 32, 24);
  const FarmConfig good;
  EXPECT_NO_THROW(validate_farm_config(scene, good));

  FarmConfig bad = good;
  bad.workers = 0;
  EXPECT_THROW(render_farm(scene, bad), std::invalid_argument);

  bad = good;
  bad.worker_speeds = {1.0, 0.0};
  EXPECT_THROW(render_farm(scene, bad), std::invalid_argument);

  bad = good;
  bad.master_speed = -1.0;
  EXPECT_THROW(render_farm(scene, bad), std::invalid_argument);

  bad = good;
  bad.partition.block_size = 0;
  EXPECT_THROW(render_farm(scene, bad), std::invalid_argument);

  bad = good;
  bad.partition.hybrid_frames = 0;
  EXPECT_THROW(render_farm(scene, bad), std::invalid_argument);

  bad = good;
  bad.partition.min_split_frames = 0;
  EXPECT_THROW(render_farm(scene, bad), std::invalid_argument);

  bad = good;
  bad.fault.enabled = true;
  bad.fault.lease_base_seconds = 0.0;
  EXPECT_THROW(render_farm(scene, bad), std::invalid_argument);

  // Crash faults without detection enabled would hang the run: refused.
  bad = good;
  bad.workers = 2;
  bad.fault_plan.events.push_back(FaultPlan::crash_at(1, 5.0));
  EXPECT_THROW(render_farm(scene, bad), std::invalid_argument);

  // Faulting the master (rank 0) or an out-of-range rank: refused.
  bad = good;
  bad.workers = 2;
  bad.fault.enabled = true;
  bad.fault_plan.events.push_back(FaultPlan::crash_at(0, 5.0));
  EXPECT_THROW(render_farm(scene, bad), std::invalid_argument);
  bad.fault_plan.events.back() = FaultPlan::crash_at(3, 5.0);
  EXPECT_THROW(render_farm(scene, bad), std::invalid_argument);

  // Slowdown windows are sim-only.
  bad = good;
  bad.backend = FarmBackend::kThreads;
  bad.fault_plan.events.push_back(
      FaultPlan::slowdown_window(1, 0.0, 1.0, 0.5));
  EXPECT_THROW(render_farm(scene, bad), std::invalid_argument);
}

TEST(RenderFarm, AdaptiveBeatsStaticOnHeterogeneousSequenceDivision) {
  // Coherence off isolates the scheduler: every frame costs the same, so
  // work stolen from the slow worker is pure win.
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig adaptive;
  adaptive.backend = FarmBackend::kSim;
  adaptive.worker_speeds = {1.0, 0.25};
  adaptive.coherence.enabled = false;
  adaptive.partition.scheme = PartitionScheme::kSequenceDivision;
  adaptive.partition.adaptive = true;
  adaptive.partition.min_split_frames = 2;
  FarmConfig fixed = adaptive;
  fixed.partition.adaptive = false;

  const FarmResult a = render_farm(scene, adaptive);
  const FarmResult s = render_farm(scene, fixed);
  EXPECT_LT(a.elapsed_seconds, s.elapsed_seconds);
}

TEST(RenderFarm, StealingUnderCoherencePaysFullRenderRestarts) {
  // With coherence on, every adaptive steal restarts coherence on the
  // stolen range (a full first frame). This is the effect that makes the
  // paper's sequence division (speedup 5) lose to frame division (speedup
  // 7): verify the stolen tasks really do full-render.
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds = {4.0, 0.25};
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = true;
  config.partition.min_split_frames = 2;

  const FarmResult r = render_farm(scene, config);
  ASSERT_GT(r.master.adaptive_splits, 0);
  // 2 initial tasks + one full render per successful steal.
  EXPECT_EQ(r.master.full_renders, 2 + r.master.adaptive_splits);
}

TEST(RenderFarm, WritesFrameFiles) {
  const AnimatedScene scene = orbit_scene(2, 3, 32, 24);
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.workers = 2;
  config.partition.scheme = PartitionScheme::kFrameDivision;
  config.partition.block_size = 16;
  config.output_dir = ::testing::TempDir();

  const FarmResult result = render_farm(scene, config);
  for (int f = 0; f < scene.frame_count(); ++f) {
    char name[64];
    std::snprintf(name, sizeof(name), "/frame_%04d.tga", f);
    Framebuffer fb;
    ASSERT_TRUE(read_tga(&fb, config.output_dir + name)) << name;
    EXPECT_EQ(fb, result.frames[f]);
  }
}

}  // namespace
}  // namespace now
