#include "src/scene/scene_parser.h"

#include <gtest/gtest.h>

#include "src/trace/render.h"

namespace now {
namespace {

constexpr const char* kBasicScene = R"(
# A minimal but complete scene.
scene {
  resolution 64 48
  frames 5
  fps 10
  background 0.1 0.1 0.2
  camera { from 0 2 8  at 0 1 0  up 0 1 0  fov 45 }
  material "red"   { type matte  color 0.9 0.1 0.1 }
  material "floor" { type checker  color 0.6 0.6 0.6  color2 0.2 0.2 0.2  cell 0.8 }
  object "ball" {
    sphere { center 0 1 0  radius 0.5 }
    material "red"
    animate { mode linear  key 0  0 0 0  key 4  2 0 0 }
  }
  object "ground" {
    plane { normal 0 1 0  d 0 }
    material "floor"
  }
  light { type point  position 3 6 3  color 1 1 1  intensity 0.9 }
}
)";

TEST(SceneParser, ParsesBasicScene) {
  const ParseResult result = parse_scene(kBasicScene);
  ASSERT_TRUE(result.ok) << result.error;
  const AnimatedScene& scene = result.scene;
  EXPECT_EQ(scene.width(), 64);
  EXPECT_EQ(scene.height(), 48);
  EXPECT_EQ(scene.frame_count(), 5);
  EXPECT_DOUBLE_EQ(scene.fps(), 10.0);
  EXPECT_EQ(scene.object_count(), 2);
  EXPECT_EQ(scene.light_count(), 1);
  EXPECT_EQ(scene.background(), (Color{0.1, 0.1, 0.2}));
}

TEST(SceneParser, AnimationKeysAreInFrames) {
  const ParseResult result = parse_scene(kBasicScene);
  ASSERT_TRUE(result.ok) << result.error;
  // key 4 -> frame 4 -> time 0.4 s; object moves 2 units over 4 frames.
  EXPECT_EQ(result.scene.object_transform(0, 0).translation, Vec3(0, 0, 0));
  EXPECT_EQ(result.scene.object_transform(0, 4).translation, Vec3(2, 0, 0));
  EXPECT_EQ(result.scene.object_transform(0, 2).translation, Vec3(1, 0, 0));
}

TEST(SceneParser, ParsedSceneRenders) {
  const ParseResult result = parse_scene(kBasicScene);
  ASSERT_TRUE(result.ok) << result.error;
  const Framebuffer fb = render_world(result.scene.world_at(0), 64, 48);
  // The image is not uniformly background.
  int non_bg = 0;
  const Rgb8 bg{to_byte(0.1), to_byte(0.1), to_byte(0.2)};
  for (int y = 0; y < 48; ++y) {
    for (int x = 0; x < 64; ++x) {
      if (!(fb.at(x, y) == bg)) ++non_bg;
    }
  }
  EXPECT_GT(non_bg, 500);
}

TEST(SceneParser, AllShapeTypes) {
  const ParseResult result = parse_scene(R"(
scene {
  material "m" { type matte  color 0.5 0.5 0.5 }
  object "s" { sphere { center 0 0 0 radius 1 } material "m" }
  object "p" { plane { point 0 1 0  normal 0 2 0 } material "m" }
  object "b" { box { min -1 -1 -1  max 1 1 1 } material "m" }
  object "b2" { box { center 0 0 0  half 1 2 1 } material "m" }
  object "c" { cylinder { p0 0 0 0  p1 0 2 0  radius 0.3 } material "m" }
  object "d" { disc { center 0 0 0  normal 0 1 0  radius 1 } material "m" }
  object "t" { triangle { v0 0 0 0  v1 1 0 0  v2 0 1 0 } material "m" }
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.scene.object_count(), 7);
  EXPECT_EQ(result.scene.object(1).local->type(), ShapeType::kPlane);
  EXPECT_EQ(result.scene.object(6).local->type(), ShapeType::kTriangle);
}

TEST(SceneParser, AllMaterialTypes) {
  const ParseResult result = parse_scene(R"(
scene {
  material "a" { type matte color 1 0 0 }
  material "b" { type chrome }
  material "c" { type glass ior 1.33 }
  material "d" { type mirror color 1 1 1 reflectivity 0.8 }
  material "e" { type checker color 1 1 1 color2 0 0 0 cell 2 }
  material "f" { type brick color 0.5 0.2 0.1 color2 0.7 0.7 0.7 brick_size 0.5 0.2 mortar 0.02 }
  material "g" { type marble color 0 0 0 color2 1 1 1 frequency 2 turbulence 1 }
  material "h" { type matte color 0.5 0.5 0.5 ambient 0.2 diffuse 0.5 specular 0.3 shininess 64 transmittance 0.1 }
  object "o" { sphere { center 0 0 0 radius 1 } material "h" }
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.scene.material_count(), 8);
  const Material& h = result.scene.material(7);
  EXPECT_DOUBLE_EQ(h.ambient, 0.2);
  EXPECT_DOUBLE_EQ(h.diffuse, 0.5);
  EXPECT_DOUBLE_EQ(h.shininess, 64.0);
  EXPECT_DOUBLE_EQ(h.transmittance, 0.1);
}

TEST(SceneParser, CameraCuts) {
  const ParseResult result = parse_scene(R"(
scene {
  frames 10
  camera { from 0 0 5  at 0 0 0  up 0 1 0  fov 50 }
  camera { cut 6  from 5 0 0  at 0 0 0  up 0 1 0  fov 50 }
  material "m" { type matte color 1 1 1 }
  object "o" { sphere { center 0 0 0 radius 1 } material "m" }
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.scene.camera_changed(5, 6));
  EXPECT_FALSE(result.scene.camera_changed(0, 5));
  EXPECT_EQ(result.scene.split_shots().size(), 2u);
}

TEST(SceneParser, PendulumAndOrbitAnimators) {
  const ParseResult result = parse_scene(R"(
scene {
  frames 8
  fps 4
  material "m" { type matte color 1 1 1 }
  object "swing" {
    cylinder { p0 0 2 0  p1 0 0 0  radius 0.1 }
    material "m"
    animate { pendulum  pivot 0 2 0  axis 0 0 1  amplitude 45  period 2 }
  }
  object "orbiter" {
    sphere { center 1 0 0  radius 0.2 }
    material "m"
    animate { orbit  center 0 0 0  axis 0 1 0  period 2 }
  }
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  // Pendulum: amplitude at t=0, through zero at quarter period.
  EXPECT_NE(result.scene.object_transform(0, 0), Transform::identity());
  // Orbit: moves every frame.
  EXPECT_TRUE(result.scene.object_changed(1, 0, 1));
}

struct ErrorCase {
  const char* label;
  const char* source;
  const char* expect_substring;
};

class SceneParserErrors : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(SceneParserErrors, ReportsLineAndReason) {
  const ParseResult result = parse_scene(GetParam().source);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find(GetParam().expect_substring), std::string::npos)
      << "actual error: " << result.error;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SceneParserErrors,
    ::testing::Values(
        ErrorCase{"no_scene", "nope {}", "expected 'scene'"},
        ErrorCase{"unknown_item", "scene { wibble 3 }", "unknown scene item"},
        ErrorCase{"unknown_material",
                  R"(scene { object "o" { sphere { center 0 0 0 radius 1 } material "missing" } })",
                  "unknown material"},
        ErrorCase{"no_shape",
                  R"(scene { material "m" { type matte } object "o" { material "m" } })",
                  "has no shape"},
        ErrorCase{"no_material",
                  R"(scene { object "o" { sphere { center 0 0 0 radius 1 } } })",
                  "has no material"},
        ErrorCase{"bad_material_type",
                  R"(scene { material "m" { type plutonium } })",
                  "unknown material type"},
        ErrorCase{"bad_light_type",
                  R"(scene { light { type lava } })", "unknown light type"},
        ErrorCase{"trailing", "scene { } scene { }", "trailing input"}),
    [](const ::testing::TestParamInfo<ErrorCase>& info) {
      return info.param.label;
    });

TEST(SceneParser, ErrorsIncludeLineNumbers) {
  const ParseResult result = parse_scene("scene {\n\n  wibble 3\n}");
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.error.find("line 3"), std::string::npos) << result.error;
}

TEST(SceneParser, CommentsAndWhitespace) {
  const ParseResult result = parse_scene(R"(
# leading comment
scene {   # trailing comment
  frames 3   # another
  material "m" { type matte color 1 1 1 }
  object "o" { sphere { center 0 0 0 radius 1 } material "m" }
}
)");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.scene.frame_count(), 3);
}

TEST(SceneParser, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/parser_test.scene";
  {
    FILE* f = std::fopen(path.c_str(), "w");
    std::fputs(kBasicScene, f);
    std::fclose(f);
  }
  const ParseResult result = parse_scene_file(path);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.scene.object_count(), 2);
  const ParseResult missing = parse_scene_file("/nonexistent.scene");
  EXPECT_FALSE(missing.ok);
  EXPECT_NE(missing.error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace now
