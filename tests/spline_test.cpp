#include "src/math/spline.h"

#include <gtest/gtest.h>

namespace now {
namespace {

Spline ramp(InterpMode mode) {
  Spline s(mode);
  s.add_key(0.0, {0, 0, 0});
  s.add_key(1.0, {1, 2, 3});
  s.add_key(2.0, {2, 0, 6});
  return s;
}

TEST(Spline, EmptyEvaluatesToZero) {
  const Spline s;
  EXPECT_EQ(s.evaluate(1.0), Vec3(0, 0, 0));
  EXPECT_TRUE(s.empty());
}

TEST(Spline, ClampsOutsideKeyRange) {
  const Spline s = ramp(InterpMode::kLinear);
  EXPECT_EQ(s.evaluate(-5.0), Vec3(0, 0, 0));
  EXPECT_EQ(s.evaluate(99.0), Vec3(2, 0, 6));
}

TEST(Spline, HitsKeysExactly) {
  for (const auto mode : {InterpMode::kStep, InterpMode::kLinear,
                          InterpMode::kCatmullRom}) {
    const Spline s = ramp(mode);
    EXPECT_EQ(s.evaluate(0.0), Vec3(0, 0, 0)) << static_cast<int>(mode);
    EXPECT_EQ(s.evaluate(1.0), Vec3(1, 2, 3)) << static_cast<int>(mode);
    EXPECT_EQ(s.evaluate(2.0), Vec3(2, 0, 6)) << static_cast<int>(mode);
  }
}

TEST(Spline, LinearMidpoints) {
  const Spline s = ramp(InterpMode::kLinear);
  EXPECT_EQ(s.evaluate(0.5), Vec3(0.5, 1, 1.5));
  EXPECT_EQ(s.evaluate(1.5), Vec3(1.5, 1, 4.5));
}

TEST(Spline, StepHoldsPreviousKey) {
  const Spline s = ramp(InterpMode::kStep);
  EXPECT_EQ(s.evaluate(0.99), Vec3(0, 0, 0));
  EXPECT_EQ(s.evaluate(1.01), Vec3(1, 2, 3));
}

TEST(Spline, CatmullRomIsContinuous) {
  const Spline s = ramp(InterpMode::kCatmullRom);
  // Sample densely; successive samples must be close (no jumps).
  Vec3 prev = s.evaluate(0.0);
  for (int i = 1; i <= 200; ++i) {
    const Vec3 cur = s.evaluate(2.0 * i / 200.0);
    EXPECT_LT((cur - prev).length(), 0.1) << "at sample " << i;
    prev = cur;
  }
}

TEST(Spline, CatmullRomStaysNearControlHullForStraightLine) {
  // Collinear keys must produce collinear interpolation.
  Spline s(InterpMode::kCatmullRom);
  s.add_key(0.0, {0, 0, 0});
  s.add_key(1.0, {1, 1, 0});
  s.add_key(2.0, {2, 2, 0});
  s.add_key(3.0, {3, 3, 0});
  for (double t = 0.0; t <= 3.0; t += 0.1) {
    const Vec3 v = s.evaluate(t);
    EXPECT_NEAR(v.x, v.y, 1e-12) << "t=" << t;
  }
}

TEST(Spline, KeyCountAndTimes) {
  const Spline s = ramp(InterpMode::kLinear);
  EXPECT_EQ(s.key_count(), 3);
  EXPECT_DOUBLE_EQ(s.start_time(), 0.0);
  EXPECT_DOUBLE_EQ(s.end_time(), 2.0);
}

TEST(Hermite, EndpointsAndTangents) {
  // h(0) = p0, h(1) = p1.
  EXPECT_DOUBLE_EQ(hermite(2.0, 1.0, 5.0, -1.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(hermite(2.0, 1.0, 5.0, -1.0, 1.0), 5.0);
  // Derivative at 0 approximates m0.
  const double eps = 1e-6;
  const double d0 =
      (hermite(0, 3.0, 1, 0, eps) - hermite(0, 3.0, 1, 0, 0.0)) / eps;
  EXPECT_NEAR(d0, 3.0, 1e-4);
}

}  // namespace
}  // namespace now
