#include "src/core/change_detector.h"

#include <gtest/gtest.h>

#include <set>

#include "src/geom/plane.h"
#include "src/geom/sphere.h"

namespace now {
namespace {

World world_with_sphere(const Vec3& center, double radius) {
  World world;
  const int mat = world.add_material(Material::matte(Color::white()));
  world.add_object(std::make_unique<Sphere>(center, radius), mat, 0);
  return world;
}

VoxelGrid grid8() { return VoxelGrid({{0, 0, 0}, {8, 8, 8}}, 8, 8, 8); }

TEST(ChangeDetector, NoChangesNoDirtyVoxels) {
  const World a = world_with_sphere({2, 2, 2}, 0.5);
  const World b = world_with_sphere({2, 2, 2}, 0.5);
  const DirtyVoxels dirty = find_dirty_voxels(grid8(), a, b, {});
  EXPECT_TRUE(dirty.empty());
}

TEST(ChangeDetector, MovingSphereDirtiesOldAndNewFootprint) {
  const VoxelGrid grid = grid8();
  const World a = world_with_sphere({1.5, 1.5, 1.5}, 0.4);
  const World b = world_with_sphere({6.5, 6.5, 6.5}, 0.4);
  const DirtyVoxels dirty = find_dirty_voxels(grid, a, b, {0});
  ASSERT_FALSE(dirty.all_dirty);
  std::set<std::uint32_t> cells(dirty.cells.begin(), dirty.cells.end());
  // Old position cell (1,1,1) and new position cell (6,6,6) both dirty.
  EXPECT_TRUE(cells.count(grid.cell_index(1, 1, 1)));
  EXPECT_TRUE(cells.count(grid.cell_index(6, 6, 6)));
  // A far-away cell is untouched.
  EXPECT_FALSE(cells.count(grid.cell_index(1, 6, 1)));
}

TEST(ChangeDetector, CellsAreDeduplicated) {
  const VoxelGrid grid = grid8();
  // Tiny move within the same cells: footprints overlap heavily.
  const World a = world_with_sphere({2.5, 2.5, 2.5}, 0.4);
  const World b = world_with_sphere({2.6, 2.5, 2.5}, 0.4);
  const DirtyVoxels dirty = find_dirty_voxels(grid, a, b, {0});
  std::set<std::uint32_t> unique(dirty.cells.begin(), dirty.cells.end());
  EXPECT_EQ(unique.size(), dirty.cells.size());
}

TEST(ChangeDetector, DirtySetIsConservative) {
  // Every grid cell that geometrically overlaps either footprint must be in
  // the dirty set.
  const VoxelGrid grid = grid8();
  const Sphere old_s({2.0, 3.0, 4.0}, 0.9);
  const Sphere new_s({3.5, 3.0, 4.0}, 0.9);
  const World a = world_with_sphere(old_s.center(), old_s.radius());
  const World b = world_with_sphere(new_s.center(), new_s.radius());
  const DirtyVoxels dirty = find_dirty_voxels(grid, a, b, {0});
  std::set<std::uint32_t> cells(dirty.cells.begin(), dirty.cells.end());
  for (int iz = 0; iz < 8; ++iz) {
    for (int iy = 0; iy < 8; ++iy) {
      for (int ix = 0; ix < 8; ++ix) {
        const Aabb box = grid.cell_bounds(ix, iy, iz);
        if (old_s.overlaps_box(box) || new_s.overlaps_box(box)) {
          EXPECT_TRUE(cells.count(grid.cell_index(ix, iy, iz)))
              << ix << "," << iy << "," << iz;
        }
      }
    }
  }
}

TEST(ChangeDetector, MovingPlaneDirtiesEverything) {
  World a;
  World b;
  const int mat_a = a.add_material(Material::matte(Color::white()));
  const int mat_b = b.add_material(Material::matte(Color::white()));
  a.add_object(std::make_unique<Plane>(Vec3{0, 1, 0}, 1.0), mat_a, 0);
  b.add_object(std::make_unique<Plane>(Vec3{0, 1, 0}, 2.0), mat_b, 0);
  const DirtyVoxels dirty = find_dirty_voxels(grid8(), a, b, {0});
  EXPECT_TRUE(dirty.all_dirty);
}

TEST(ChangeDetector, ObjectOutsideGridContributesNothing) {
  const World a = world_with_sphere({50, 50, 50}, 1.0);
  const World b = world_with_sphere({60, 60, 60}, 1.0);
  const DirtyVoxels dirty = find_dirty_voxels(grid8(), a, b, {0});
  EXPECT_TRUE(dirty.empty());
}

TEST(ChangeDetector, MissingObjectIdIsIgnored) {
  const World a = world_with_sphere({2, 2, 2}, 0.5);
  const World b = world_with_sphere({3, 2, 2}, 0.5);
  const DirtyVoxels dirty = find_dirty_voxels(grid8(), a, b, {42});
  EXPECT_TRUE(dirty.empty());
}

TEST(AddFootprint, MatchesOverlapTests) {
  const VoxelGrid grid = grid8();
  const Sphere s({4.0, 4.0, 4.0}, 1.2);
  std::vector<std::uint32_t> cells;
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(grid.cell_count()), 0);
  add_footprint(grid, s, &cells, &seen);
  std::int64_t expected = 0;
  for (int iz = 0; iz < 8; ++iz) {
    for (int iy = 0; iy < 8; ++iy) {
      for (int ix = 0; ix < 8; ++ix) {
        if (s.overlaps_box(grid.cell_bounds(ix, iy, iz))) ++expected;
      }
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(cells.size()), expected);
}

}  // namespace
}  // namespace now
