#include "src/par/protocol.h"

#include <gtest/gtest.h>

namespace now {
namespace {

TEST(Protocol, TaskRoundTrip) {
  RenderTask task;
  task.task_id = 17;
  task.region = {80, 160, 80, 80};
  task.first_frame = 12;
  task.frame_count = 33;
  RenderTask out;
  ASSERT_TRUE(decode_task(&out, encode_task(task)));
  EXPECT_EQ(out, task);
  EXPECT_EQ(out.end_frame(), 45);
}

TEST(Protocol, TaskRejectsGarbage) {
  RenderTask out;
  EXPECT_FALSE(decode_task(&out, "short"));
  EXPECT_FALSE(decode_task(&out, encode_task(RenderTask{}) + "trailing"));
}

TEST(Protocol, ShrinkRoundTrip) {
  const ShrinkRequest req{5, 23};
  ShrinkRequest out;
  ASSERT_TRUE(decode_shrink(&out, encode_shrink(req)));
  EXPECT_EQ(out.task_id, 5);
  EXPECT_EQ(out.new_end_frame, 23);
}

TEST(Protocol, ShrinkAckRoundTrip) {
  const ShrinkAck ack{5, -1};
  ShrinkAck out;
  ASSERT_TRUE(decode_shrink_ack(&out, encode_shrink_ack(ack)));
  EXPECT_EQ(out.task_id, 5);
  EXPECT_EQ(out.honored_end_frame, -1);
}

TEST(Protocol, LeaseCheckRoundTrip) {
  LeaseCheck check;
  check.worker = 3;
  check.task_id = 41;
  check.phase = 1;
  LeaseCheck out;
  ASSERT_TRUE(decode_lease_check(&out, encode_lease_check(check)));
  EXPECT_EQ(out.worker, 3);
  EXPECT_EQ(out.task_id, 41);
  EXPECT_EQ(out.phase, 1);
  EXPECT_FALSE(decode_lease_check(&out, "garbage"));
}

TEST(Protocol, FrameResultRoundTripDense) {
  Framebuffer fb(16, 16);
  fb.set(3, 3, Rgb8{1, 2, 3});
  FrameResult result;
  result.task_id = 2;
  result.frame = 7;
  result.rays = 123456789ULL;
  result.shadow_rays = 4242;
  result.pixels_recomputed = 99;
  result.full_render = 1;
  result.compute_seconds = 12.75;
  result.payload = make_dense_payload(fb, {0, 0, 16, 16});

  FrameResult out;
  ASSERT_TRUE(decode_frame_result(&out, encode_frame_result(result)));
  EXPECT_EQ(out.task_id, 2);
  EXPECT_EQ(out.frame, 7);
  EXPECT_EQ(out.rays, 123456789ULL);
  EXPECT_EQ(out.shadow_rays, 4242ULL);
  EXPECT_EQ(out.pixels_recomputed, 99);
  EXPECT_EQ(out.full_render, 1);
  EXPECT_DOUBLE_EQ(out.compute_seconds, 12.75);
  Framebuffer applied(16, 16);
  apply_payload(&applied, out.payload);
  EXPECT_EQ(applied.at(3, 3), (Rgb8{1, 2, 3}));
}

TEST(Protocol, FrameResultRoundTripSparse) {
  Framebuffer fb(16, 16);
  fb.set(5, 5, Rgb8{9, 9, 9});
  PixelMask updated(16, 16);
  updated.set(5, 5, true);
  FrameResult result;
  result.payload = make_sparse_payload(fb, {0, 0, 16, 16}, updated);
  ASSERT_FALSE(result.payload.dense);

  FrameResult out;
  ASSERT_TRUE(decode_frame_result(&out, encode_frame_result(result)));
  EXPECT_FALSE(out.payload.dense);
  Framebuffer applied(16, 16);
  apply_payload(&applied, out.payload);
  EXPECT_EQ(applied.at(5, 5), (Rgb8{9, 9, 9}));
}

TEST(Protocol, FrameResultRejectsCorruptPayload) {
  Framebuffer fb(8, 8);
  FrameResult result;
  result.payload = make_dense_payload(fb, {0, 0, 8, 8});
  std::string bytes = encode_frame_result(result);
  bytes[bytes.size() / 2] ^= 0x01;  // flip a bit somewhere in the middle
  FrameResult out;
  // Either decodes (bit was in pixel data) or fails; must not crash. If it
  // decodes, structure is still valid.
  if (decode_frame_result(&out, bytes)) {
    EXPECT_EQ(out.payload.rect.area(), 64);
  }
  bytes.resize(10);
  EXPECT_FALSE(decode_frame_result(&out, bytes));
}

}  // namespace
}  // namespace now
