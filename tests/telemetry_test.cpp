// Live telemetry plane: cross-rank flow tracing, the time-series sampler,
// the straggler detector, the /metrics + /status endpoint and the flight
// recorder — plus the guarantee that none of it perturbs a simulated run.
#include "src/par/render_farm.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <fstream>
#include <sstream>
#include <string>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "src/obs/event_trace.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/report.h"
#include "src/obs/status_server.h"
#include "src/obs/straggler.h"
#include "src/obs/timeseries.h"
#include "src/par/serial.h"
#include "src/scene/builtin_scenes.h"

namespace now {
namespace {

std::vector<Framebuffer> reference_frames(const AnimatedScene& scene,
                                          const TraceOptions& trace) {
  std::vector<Framebuffer> out;
  for (int f = 0; f < scene.frame_count(); ++f) {
    out.push_back(
        render_world(scene.world_at(f), scene.width(), scene.height(), trace));
  }
  return out;
}

void expect_frames_equal(const std::vector<Framebuffer>& got,
                         const std::vector<Framebuffer>& want,
                         const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t f = 0; f < got.size(); ++f) {
    ASSERT_EQ(got[f], want[f]) << label << " frame " << f;
  }
}

/// Blocking HTTP/1.0 GET against 127.0.0.1:`port`. Returns the raw response
/// (status line + headers + body); `*ok` reports whether the connect and
/// round-trip succeeded at the socket level.
std::string http_get(int port, const std::string& path, bool* ok) {
  *ok = false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    off += static_cast<std::size_t>(n);
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  *ok = !resp.empty();
  return resp;
}

std::string http_body(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

// -- Histogram overflow & snapshot determinism ------------------------------

TEST(HistogramOverflow, OutOfRangeAndNaNLandInTheOverflowBucket) {
  Histogram h({1.0, 2.0});
  h.observe(0.5);                                        // bucket 0
  h.observe(1.5);                                        // bucket 1
  h.observe(5.0);                                        // overflow
  h.observe(std::numeric_limits<double>::quiet_NaN());   // overflow, no sum
  h.observe(std::numeric_limits<double>::infinity());    // overflow

  const std::vector<std::uint64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 3u);  // bounds + explicit overflow bucket
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 3u);
  EXPECT_EQ(h.overflow(), 3u);
  EXPECT_EQ(h.count(), 5u);
  // NaN is excluded from the sum; the finite overflow samples are not.
  EXPECT_TRUE(std::isinf(h.sum()) || h.sum() == 7.0);
}

TEST(HistogramOverflow, SnapshotSurfacesAnOverflowCounter) {
  MetricsRegistry reg;
  reg.histogram("frame.seconds", {1.0}).observe(3.0);
  reg.histogram("frame.seconds").observe(0.5);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.count("frame.seconds.overflow"), 1u);
  EXPECT_EQ(snap.counters.at("frame.seconds.overflow"), 1u);
  const HistogramSnapshot& hs = snap.histograms.at("frame.seconds");
  EXPECT_EQ(hs.overflow, 1u);
  EXPECT_EQ(hs.counts.back(), hs.overflow);

  // No overflow -> no phantom counter.
  MetricsRegistry clean;
  clean.histogram("ok.seconds", {10.0}).observe(1.0);
  EXPECT_EQ(clean.snapshot().counters.count("ok.seconds.overflow"), 0u);
}

TEST(MetricsJson, KeysAreSortedAndOutputIsDeterministic) {
  MetricsRegistry reg;
  reg.counter("zeta.count").inc(2);
  reg.counter("alpha.count").inc(1);
  reg.gauge("mid.depth").set(3.5);
  reg.histogram("lat.seconds", {1.0}).observe(9.0);

  const std::string json = reg.snapshot().to_json();
  std::string err;
  EXPECT_TRUE(json_syntax_ok(json, &err)) << err;
  // std::map ordering: alpha before lat.seconds.overflow before zeta.
  const std::size_t a = json.find("\"alpha.count\"");
  const std::size_t o = json.find("\"lat.seconds.overflow\"");
  const std::size_t z = json.find("\"zeta.count\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(o, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, o);
  EXPECT_LT(o, z);
  EXPECT_EQ(json, reg.snapshot().to_json());
}

// -- Utilization edge cases -------------------------------------------------

TEST(Utilization, ZeroDurationZeroFrameRunIsWellDefined) {
  const UtilizationReport empty = compute_utilization({}, 3, 0.0);
  ASSERT_EQ(empty.ranks.size(), 3u);
  for (const RankUtilization& r : empty.ranks) {
    EXPECT_TRUE(std::isfinite(r.busy_frac));
    EXPECT_TRUE(std::isfinite(r.comm_frac));
    EXPECT_TRUE(std::isfinite(r.idle_frac));
    EXPECT_EQ(r.busy_frac, 0.0);
    EXPECT_EQ(r.frames, 0);
  }
  EXPECT_TRUE(std::isfinite(empty.load_imbalance));
  EXPECT_TRUE(std::isfinite(empty.coherence_savings));
  // The text rendering must not trip on the degenerate report either.
  EXPECT_FALSE(empty.to_text().empty());
}

// -- Straggler detector -----------------------------------------------------

TEST(Straggler, FlagsASlowWorkerOnceAndClearsWhenItRecovers) {
  StragglerConfig cfg;
  cfg.alpha = 0.5;
  cfg.min_samples = 2;
  cfg.threshold = 1.5;
  cfg.clear_ratio = 1.2;
  StragglerDetector d(cfg);

  EXPECT_EQ(d.expected_seconds(7), 1.0);  // no data: sane positive default

  int transitions = 0;
  for (int i = 0; i < 3; ++i) {
    if (d.observe(1, 1.0)) ++transitions;
    if (d.observe(2, 1.0)) ++transitions;
    if (d.observe(3, 5.0)) ++transitions;
  }
  EXPECT_EQ(transitions, 1);
  EXPECT_EQ(d.flag_transitions(), 1);
  EXPECT_FALSE(d.is_straggler(1));
  EXPECT_FALSE(d.is_straggler(2));
  EXPECT_TRUE(d.is_straggler(3));
  EXPECT_EQ(d.stragglers(), std::vector<int>{3});
  EXPECT_GT(d.expected_seconds(3), d.expected_seconds(1));
  EXPECT_GT(d.fleet_mean_seconds(), 0.0);

  // The worker speeds back up: the flag clears, but the transition counter
  // (which feeds sched.stragglers) only ever counts flag events.
  for (int i = 0; i < 10; ++i) {
    d.observe(1, 1.0);
    d.observe(2, 1.0);
    d.observe(3, 1.0);
  }
  EXPECT_FALSE(d.is_straggler(3));
  EXPECT_EQ(d.flag_transitions(), 1);
}

TEST(Straggler, UniformFleetFlagsNobody) {
  StragglerConfig cfg;
  cfg.min_samples = 2;
  StragglerDetector d(cfg);
  for (int i = 0; i < 20; ++i) {
    for (int w = 1; w <= 3; ++w) {
      EXPECT_FALSE(d.observe(w, 1.0 + 0.01 * (i % 3)));
    }
  }
  EXPECT_TRUE(d.stragglers().empty());
  EXPECT_EQ(d.flag_transitions(), 0);
}

// -- Time-series sampler ----------------------------------------------------

TEST(TimeSeries, RingStaysBoundedAndRateIsComputedOverTheWindow) {
  TimeSeriesSampler s(4);
  EXPECT_EQ(s.capacity_per_series(), 4u);

  MetricsRegistry reg;
  Counter& c = reg.counter("sched.frames_committed");
  reg.gauge("sched.queue_depth").set(2.0);
  for (int t = 0; t < 10; ++t) {
    c.inc(2);
    s.sample(static_cast<double>(t), reg.snapshot());
  }
  EXPECT_EQ(s.ticks(), 10);

  const std::vector<TimePoint> pts = s.series("sched.frames_committed");
  ASSERT_EQ(pts.size(), 4u);  // oldest evicted, newest retained
  EXPECT_EQ(pts.front().t, 6.0);
  EXPECT_EQ(pts.back().t, 9.0);
  EXPECT_EQ(pts.front().value, 14.0);
  EXPECT_EQ(pts.back().value, 20.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i - 1].t, pts[i].t);  // oldest first
  }
  EXPECT_NEAR(s.rate_per_second("sched.frames_committed"), 2.0, 1e-9);
  EXPECT_EQ(s.rate_per_second("unknown.series"), 0.0);

  const std::vector<std::string> names = s.series_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "sched.frames_committed");
  EXPECT_EQ(names[1], "sched.queue_depth");
}

// -- Prometheus exposition & the status server ------------------------------

TEST(Prometheus, TextExpositionHasTheExpectedShape) {
  MetricsRegistry reg;
  reg.counter("sched.frames_committed").inc(7);
  reg.gauge("sched.queue_depth").set(1.5);
  Histogram& h = reg.histogram("frame.seconds", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(99.0);  // overflow

  const std::string text = prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("# TYPE sched_frames_committed counter"),
            std::string::npos);
  EXPECT_NE(text.find("sched_frames_committed 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sched_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("sched_queue_depth 1.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE frame_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("frame_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("frame_seconds_bucket{le=\"1\"} 2"), std::string::npos);
  // The +Inf bucket is cumulative over everything, overflow included.
  EXPECT_NE(text.find("frame_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("frame_seconds_sum"), std::string::npos);
  EXPECT_NE(text.find("frame_seconds_count 3"), std::string::npos);
  // The overflow companion counter survives the name mapping.
  EXPECT_NE(text.find("frame_seconds_overflow 1"), std::string::npos);
}

TEST(StatusServer, ServesMetricsAndStatusOverARealSocket) {
  MetricsRegistry reg;
  reg.counter("demo.requests").inc(3);
  StatusBoard board;
  board.publish("{\"alive\": true}\n");

  StatusServer server(
      0, [&reg] { return prometheus_text(reg.snapshot()); },
      [&board] { return board.latest(); });
  ASSERT_TRUE(server.ok());
  ASSERT_GT(server.port(), 0);

  bool ok = false;
  const std::string metrics = http_get(server.port(), "/metrics", &ok);
  ASSERT_TRUE(ok);
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(http_body(metrics).find("demo_requests 3"), std::string::npos);

  const std::string status = http_get(server.port(), "/status", &ok);
  ASSERT_TRUE(ok);
  EXPECT_NE(status.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(status.find("application/json"), std::string::npos);
  EXPECT_NE(http_body(status).find("\"alive\""), std::string::npos);

  const std::string missing = http_get(server.port(), "/nope", &ok);
  ASSERT_TRUE(ok);
  EXPECT_NE(missing.find("404"), std::string::npos);

  EXPECT_GE(server.requests_served(), 3);
  server.stop();
  EXPECT_FALSE(server.ok());
}

TEST(StatusServer, ParsesARequestSplitAcrossTcpSegments) {
  StatusBoard board;
  board.publish("{\"alive\": true}\n");
  StatusServer server(
      0, [] { return std::string("metrics\n"); },
      [&board] { return board.latest(); });
  ASSERT_TRUE(server.ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  // Dribble the request in three segments with pauses: the server must keep
  // reading until the \r\n\r\n header terminator before answering.
  const char* parts[] = {"GET /sta", "tus HTTP/1.0\r\nHost: x\r", "\n\r\n"};
  for (const char* part : parts) {
    ASSERT_GT(::send(fd, part, std::strlen(part), 0), 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(http_body(resp).find("\"alive\""), std::string::npos);
  server.stop();
}

// -- Flight recorder --------------------------------------------------------

TEST(FlightRecorderTest, RingEvictsOldestAndFlushWritesAValidTrace) {
  FlightRecorder fr(3);
  EventTracer tracer(false);  // export tracing off: the ring alone records
  tracer.set_flight_recorder(&fr);
  ASSERT_TRUE(tracer.enabled());

  for (int i = 0; i < 5; ++i) {
    tracer.instant(1, "frame", "frame.render", static_cast<double>(i),
                   {{"frame", i}});
  }
  tracer.instant(2, "sched", "task.assign", 0.5);

  EXPECT_TRUE(tracer.sorted_events().empty());  // export buffer untouched
  EXPECT_EQ(fr.events_recorded(), 6);
  EXPECT_EQ(fr.events_evicted(), 2);
  const std::vector<TraceEvent> rank1 = fr.rank_events(1);
  ASSERT_EQ(rank1.size(), 3u);  // capacity: the oldest two are gone
  EXPECT_EQ(rank1.front().ts_seconds, 2.0);
  EXPECT_EQ(rank1.back().ts_seconds, 4.0);
  EXPECT_EQ(fr.ranks(), (std::vector<int>{1, 2}));

  const std::string dir = ::testing::TempDir();
  const std::string path = FlightRecorder::crash_trace_path(dir, 1);
  std::remove(path.c_str());
  ASSERT_TRUE(fr.flush_rank(1, dir));

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream content;
  content << in.rdbuf();
  std::string err;
  EXPECT_TRUE(validate_chrome_trace(content.str(), &err)) << err;
  EXPECT_NE(content.str().find("frame.render"), std::string::npos);

  // A rank with no retained events flushes nothing.
  EXPECT_FALSE(fr.flush_rank(9, dir));
}

TEST(FlightRecorderTest, FaultInjectedDeathWritesTheCrashTrace) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds = {1.0, 1.0, 1.0};
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = true;
  config.partition.min_split_frames = 2;
  config.fault.enabled = true;
  config.fault.lease_base_seconds = 8.0;
  config.fault.lease_per_frame_seconds = 4.0;
  config.fault.ping_grace_seconds = 3.0;
  config.fault_plan.events.push_back(FaultPlan::crash_after_frames(1, 2));
  config.obs.flight_recorder = true;
  config.obs.flight_dir = ::testing::TempDir();
  config.obs.flight_capacity = 256;

  const std::string path =
      FlightRecorder::crash_trace_path(config.obs.flight_dir, 1);
  std::remove(path.c_str());

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.metrics.counter("fault.crashes"), 1u);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing crash trace " << path;
  std::ostringstream content;
  content << in.rdbuf();
  // The slice is one rank's partial view (its flow chains start on the
  // scheduler's rank), so it is checked as loadable JSON, not against the
  // merged-trace flow rules.
  std::string err;
  EXPECT_TRUE(json_syntax_ok(content.str(), &err)) << err;
  EXPECT_NE(content.str().find("\"traceEvents\""), std::string::npos);
  // The dead rank's file records its own cause of death.
  EXPECT_NE(content.str().find("fault.crash"), std::string::npos);
}

// -- Cross-rank flow chains -------------------------------------------------

TEST(FlowTrace, ValidatorRejectsAStepWithoutAStart) {
  EventTracer t(true);
  t.flow_step(1, 42, 0.5, {{"step", 1}});
  std::string err;
  EXPECT_FALSE(validate_chrome_trace(chrome_trace_json(t.sorted_events()),
                                     &err));
  EXPECT_FALSE(err.empty());

  EventTracer good(true);
  good.flow_start(0, 42, 0.0);
  good.flow_step(1, 42, 0.5);
  good.flow_end(0, 42, 1.0);
  good.flow_start(0, 43, 0.1);  // cancelled assignment: start only
  EXPECT_TRUE(validate_chrome_trace(chrome_trace_json(good.sorted_events()),
                                    &err))
      << err;
  const FlowChainStats stats = flow_chain_stats(good.sorted_events());
  EXPECT_EQ(stats.total, 2);
  EXPECT_EQ(stats.connected, 1);
}

FarmConfig traced_sim_config() {
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds = {1.0, 1.0, 1.0};
  config.partition.scheme = PartitionScheme::kFrameDivision;
  config.partition.block_size = 16;
  config.obs.trace = true;
  return config;
}

void expect_all_committed_frames_connected(const FarmResult& result,
                                           const std::string& label) {
  // One connected chain per committed region-frame: under frame division a
  // frame is several block regions, each its own chain, so the committed
  // count is the sched.frames_committed counter, not whole frames.
  EXPECT_EQ(result.flow_chains.connected,
            static_cast<std::int64_t>(
                result.metrics.counter("sched.frames_committed")))
      << label;
  EXPECT_GE(result.flow_chains.connected,
            static_cast<std::int64_t>(result.master.frames_completed))
      << label;
  EXPECT_GE(result.flow_chains.total, result.flow_chains.connected) << label;
  std::string err;
  EXPECT_TRUE(validate_chrome_trace(chrome_trace_json(result.trace_events),
                                    &err))
      << label << ": " << err;
}

TEST(FlowTrace, EveryCommittedFrameFormsAConnectedCrossRankChain) {
  const AnimatedScene scene = orbit_scene(3, 8, 48, 36);
  const FarmConfig config = traced_sim_config();
  const FarmResult result = render_farm(scene, config);
  ASSERT_EQ(result.master.frames_completed, scene.frame_count());
  expect_all_committed_frames_connected(result, "plain");
}

TEST(FlowTrace, ChainsRouteThroughFramebufferShards) {
  const AnimatedScene scene = orbit_scene(3, 8, 48, 36);
  FarmConfig config = traced_sim_config();
  config.shards = 2;
  const FarmResult result = render_farm(scene, config);
  ASSERT_EQ(result.master.frames_completed, scene.frame_count());
  expect_all_committed_frames_connected(result, "sharded");
  // The committing hop really is a shard rank, not the scheduler.
  bool shard_step = false;
  const int first_shard_rank = 4;  // 3 workers -> shards at ranks 4, 5
  for (const TraceEvent& ev : result.trace_events) {
    if (ev.phase == TraceEvent::Phase::kFlowStep &&
        ev.rank >= first_shard_rank) {
      shard_step = true;
      break;
    }
  }
  EXPECT_TRUE(shard_step);
}

TEST(FlowTrace, ChainsSurviveCrashAndReassignment) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config = traced_sim_config();
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = true;
  config.partition.min_split_frames = 2;
  config.fault.enabled = true;
  config.fault.lease_base_seconds = 8.0;
  config.fault.lease_per_frame_seconds = 4.0;
  config.fault.ping_grace_seconds = 3.0;
  config.fault_plan.events.push_back(FaultPlan::crash_after_frames(1, 2));

  const FarmResult result = render_farm(scene, config);
  ASSERT_EQ(result.master.frames_completed, scene.frame_count());
  ASSERT_GE(result.faults.tasks_reassigned, 1);
  expect_all_committed_frames_connected(result, "reassignment");
}

TEST(FlowTrace, ChainsSurviveSpeculation) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config = traced_sim_config();
  config.worker_speeds = {1.0, 1.0, 0.2};
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = false;
  config.speculation = true;

  const FarmResult result = render_farm(scene, config);
  ASSERT_EQ(result.master.frames_completed, scene.frame_count());
  ASSERT_GE(result.faults.speculations_launched, 1);
  expect_all_committed_frames_connected(result, "speculation");
}

TEST(FlowTrace, ChainsSurviveRejoin) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config = traced_sim_config();
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = false;
  config.fault_plan.events.push_back(FaultPlan::crash_at(1, 2.0));
  config.fault_plan.events.push_back(FaultPlan::rejoin_at(1, 50.0));

  const FarmResult result = render_farm(scene, config);
  ASSERT_EQ(result.master.frames_completed, scene.frame_count());
  expect_all_committed_frames_connected(result, "rejoin");
}

// -- Scheduler-side telemetry under sim -------------------------------------

TEST(Telemetry, SimSamplingIsByteTransparent) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig plain;
  plain.backend = FarmBackend::kSim;
  plain.worker_speeds = {1.0, 0.5, 0.5};
  plain.partition.scheme = PartitionScheme::kFrameDivision;
  plain.partition.block_size = 16;

  FarmConfig sampled = plain;
  sampled.obs.sample_interval_seconds = 0.5;
  sampled.obs.flight_recorder = true;
  sampled.obs.flight_dir = "";  // ring only, no implicit flush

  const FarmResult a = render_farm(scene, plain);
  const FarmResult b = render_farm(scene, sampled);

  // The sampler really ran...
  EXPECT_EQ(a.master.telemetry_samples, 0);
  EXPECT_GT(b.master.telemetry_samples, 0);
  // ...and perturbed nothing: virtual time, traffic, pixels and the metrics
  // file are all byte-identical.
  EXPECT_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(a.runtime.messages, b.runtime.messages);
  EXPECT_EQ(a.runtime.bytes, b.runtime.bytes);
  EXPECT_EQ(a.metrics.to_json(), b.metrics.to_json());
  expect_frames_equal(a.frames, b.frames, "sampling-transparency");
}

TEST(Telemetry, SimStragglerIsFlaggedDeterministically) {
  const AnimatedScene scene = orbit_scene(3, 18, 48, 36);
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds = {1.0, 1.0, 0.2};
  config.partition.scheme = PartitionScheme::kFrameDivision;
  // 48x36 with 12px blocks: every region is a uniform 144 pixels, so the
  // only per-worker cost difference is machine speed.
  config.partition.block_size = 12;
  config.coherence.enabled = false;
  config.obs.straggler.min_samples = 2;
  config.obs.straggler.threshold = 1.4;

  const FarmResult a = render_farm(scene, config);
  EXPECT_GE(a.master.straggler_flags, 1);
  EXPECT_EQ(a.metrics.counter("sched.stragglers"),
            static_cast<std::uint64_t>(a.master.straggler_flags));
  EXPECT_EQ(a.master.frames_completed, scene.frame_count());

  const FarmResult b = render_farm(scene, config);
  EXPECT_EQ(a.master.straggler_flags, b.master.straggler_flags);
  EXPECT_EQ(a.metrics.to_json(), b.metrics.to_json());
}

// -- The live plane against a real TCP farm ---------------------------------

TEST(Telemetry, StatusEndpointAnswersMidRenderOnATcpFarm) {
  const AnimatedScene scene = orbit_scene(4, 24, 96, 72);
  FarmConfig config;
  config.backend = FarmBackend::kTcp;
  config.workers = 2;
  config.partition.scheme = PartitionScheme::kFrameDivision;
  config.partition.block_size = 16;
  // A fixed port so the test can poll while the farm renders (the bound
  // port is only reported after the run). Uncommon enough to be free.
  const int port = 18473;
  config.obs.status_port = port;
  config.obs.sample_interval_seconds = 0.02;

  FarmResult result;
  std::thread farm([&] { result = render_farm(scene, config); });

  std::string metrics_body;
  std::string status_body;
  for (int attempt = 0; attempt < 2000; ++attempt) {
    bool ok = false;
    if (metrics_body.empty()) {
      const std::string resp = http_get(port, "/metrics", &ok);
      if (ok && resp.find("200 OK") != std::string::npos) {
        metrics_body = http_body(resp);
      }
    }
    if (status_body.empty()) {
      const std::string resp = http_get(port, "/status", &ok);
      // Wait for the first published sample, not the "{}" placeholder.
      if (ok && resp.find("200 OK") != std::string::npos &&
          resp.find("\"workers\"") != std::string::npos) {
        status_body = http_body(resp);
      }
    }
    if (!metrics_body.empty() && !status_body.empty()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  farm.join();

  ASSERT_EQ(result.status_port, port);
  ASSERT_FALSE(metrics_body.empty()) << "never reached /metrics mid-run";
  ASSERT_FALSE(status_body.empty()) << "never reached /status mid-run";
  EXPECT_GE(result.status_requests, 2);
  EXPECT_GT(result.master.telemetry_samples, 0);

  // Golden shape: the series the dashboard and CI smoke rely on.
  EXPECT_NE(metrics_body.find("# TYPE sched_frames_committed counter"),
            std::string::npos);
  EXPECT_NE(metrics_body.find("# TYPE sched_queue_depth gauge"),
            std::string::npos);

  std::string err;
  EXPECT_TRUE(json_syntax_ok(status_body, &err)) << err;
  for (const char* key :
       {"\"now\"", "\"workers\"", "\"frames_completed\"", "\"pending_tasks\"",
        "\"throughput_fps\"", "\"stragglers\"", "\"telemetry_samples\""}) {
    EXPECT_NE(status_body.find(key), std::string::npos) << key;
  }

  // The farm itself must be unharmed by the live plane.
  ASSERT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "tcp-live-plane");
}

}  // namespace
}  // namespace now
