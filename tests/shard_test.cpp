// The sharded framebuffer subsystem, end to end: the ownership map's
// arithmetic, the digest wire record, and the standing gate of the whole
// design — a --shards N run produces byte-identical frames to the classic
// single-master run on every backend, including under worker crashes,
// rejoins, speculation, and crash-consistent resume from every shard
// journal-segment boundary.
#include "src/shard/shard.h"

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/ckpt/journal.h"
#include "src/ckpt/recovery.h"
#include "src/image/image_io.h"
#include "src/par/render_farm.h"
#include "src/par/serial.h"
#include "src/scene/builtin_scenes.h"
#include "src/shard/digest.h"
#include "src/shard/ownership.h"

namespace now {
namespace {

std::string unique_dir(const std::string& stem) {
  static int counter = 0;
  std::string dir = ::testing::TempDir();
  if (!dir.empty() && dir.back() == '/') dir.pop_back();
  dir += "/" + stem + "_" +
         std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
         "_" + std::to_string(counter++);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary);
  f << bytes;
}

void expect_frames_equal(const std::vector<Framebuffer>& got,
                         const std::vector<Framebuffer>& want,
                         const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t f = 0; f < got.size(); ++f) {
    ASSERT_EQ(got[f], want[f]) << label << " frame " << f;
  }
}

std::vector<Framebuffer> reference_frames(const AnimatedScene& scene,
                                          const TraceOptions& trace) {
  std::vector<Framebuffer> out;
  for (int f = 0; f < scene.frame_count(); ++f) {
    out.push_back(
        render_world(scene.world_at(f), scene.width(), scene.height(), trace));
  }
  return out;
}

// -- ShardMap ---------------------------------------------------------------

TEST(ShardMap, RangesTileTheAnimationContiguously) {
  for (const int frames : {1, 5, 6, 7, 24, 100}) {
    for (int shards = 1; shards <= std::min(frames, 9); ++shards) {
      ShardMap map;
      map.shard_count = shards;
      map.worker_count = 4;
      map.frame_count = frames;
      int next = 0;
      for (int s = 0; s < shards; ++s) {
        const auto [first, end] = map.range_of(s);
        EXPECT_EQ(first, next) << frames << "/" << shards << " shard " << s;
        EXPECT_GT(end, first);
        // Balanced-contiguous: sizes differ by at most one frame.
        EXPECT_LE(end - first, frames / shards + 1);
        EXPECT_GE(end - first, frames / shards);
        for (int f = first; f < end; ++f) {
          EXPECT_EQ(map.shard_of(f), s);
          EXPECT_EQ(map.owner_rank(f),
                    map.sharded() ? 1 + map.worker_count + s : 0);
        }
        next = end;
      }
      EXPECT_EQ(next, frames);
    }
  }
}

TEST(ShardMap, UnshardedMapIsTheClassicMaster) {
  ShardMap map;
  map.worker_count = 3;
  map.frame_count = 24;
  EXPECT_FALSE(map.sharded());
  EXPECT_EQ(map.world_size(), 4);
  for (int f = 0; f < map.frame_count; ++f) {
    EXPECT_EQ(map.owner_rank(f), 0);
    EXPECT_FALSE(map.key_frame_boundary(f));
  }
}

TEST(ShardMap, KeyFrameBoundariesAreExactlyTheRangeStarts) {
  ShardMap map;
  map.shard_count = 3;
  map.worker_count = 2;
  map.frame_count = 10;
  EXPECT_EQ(map.world_size(), 1 + 2 + 3);
  for (int f = 0; f < map.frame_count; ++f) {
    const bool is_range_start =
        f > 0 && map.range_of(map.shard_of(f)).first == f;
    EXPECT_EQ(map.key_frame_boundary(f), is_range_start) << "frame " << f;
  }
}

// -- CommitDigest codec -----------------------------------------------------

TEST(CommitDigest, RoundTripsEveryKind) {
  for (const CommitKind kind :
       {CommitKind::kFresh, CommitKind::kDuplicate, CommitKind::kStale,
        CommitKind::kChainReject, CommitKind::kDecodeFail}) {
    CommitDigest d;
    d.worker = 3;
    d.task_id = 17;
    d.frame = 41;
    d.rect = PixelRect{4, 8, 32, 16};
    d.kind = kind;
    d.full_render = 1;
    d.rays = 123456789ull;
    d.shadow_rays = 987654321ull;
    d.pixels_recomputed = 512;
    d.compute_seconds = 0.125;
    CommitDigest out;
    ASSERT_TRUE(decode_commit_digest(&out, encode_commit_digest(d)));
    EXPECT_EQ(out.worker, d.worker);
    EXPECT_EQ(out.task_id, d.task_id);
    EXPECT_EQ(out.frame, d.frame);
    EXPECT_EQ(out.rect, d.rect);
    EXPECT_EQ(out.kind, d.kind);
    EXPECT_EQ(out.full_render, d.full_render);
    EXPECT_EQ(out.rays, d.rays);
    EXPECT_EQ(out.shadow_rays, d.shadow_rays);
    EXPECT_EQ(out.pixels_recomputed, d.pixels_recomputed);
    EXPECT_EQ(out.compute_seconds, d.compute_seconds);
  }
}

TEST(CommitDigest, RectKeyRoundTripsEveryRect) {
  // The scheduler rolls a dead shard's mirror back into render tasks by
  // inverting the commit-gate key, so the packing must be lossless for any
  // rect a partition can produce (16-bit lanes).
  for (const PixelRect rect :
       {PixelRect{0, 0, 1, 1}, PixelRect{4, 8, 32, 16},
        PixelRect{65535, 65535, 65535, 65535}, PixelRect{640, 480, 17, 3}}) {
    const PixelRect back = rect_from_key(rect_key(rect));
    EXPECT_EQ(back, rect);
  }
}

TEST(CommitDigest, RejectsTruncatedAndGarbagePayloads) {
  CommitDigest d;
  d.kind = CommitKind::kFresh;
  const std::string good = encode_commit_digest(d);
  CommitDigest out;
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(decode_commit_digest(&out, good.substr(0, cut)));
  }
  EXPECT_FALSE(decode_commit_digest(&out, std::string(good.size(), '\xee')));
  // An out-of-range kind byte is structural corruption, not a new state.
  CommitDigest probe = d;
  probe.kind = static_cast<CommitKind>(200);
  EXPECT_FALSE(decode_commit_digest(&out, encode_commit_digest(probe)));
}

// -- End-to-end identity: the standing gate ---------------------------------

FarmConfig shard_config(FarmBackend backend, int shards) {
  FarmConfig config;
  config.backend = backend;
  config.workers = 3;
  if (backend == FarmBackend::kSim) {
    config.worker_speeds = {1.0, 0.5, 1.5};  // heterogeneous, deterministic
  }
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = true;
  config.partition.min_split_frames = 2;
  config.shards = shards;
  return config;
}

TEST(ShardFarm, SimShardCountsAreByteIdenticalToSingleMaster) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  const FarmResult single = render_farm(scene, shard_config(FarmBackend::kSim, 1));
  ASSERT_EQ(single.master.frames_completed, scene.frame_count());
  ASSERT_TRUE(single.shards.empty());

  for (const int shards : {2, 3, 4, 8}) {
    const FarmResult result =
        render_farm(scene, shard_config(FarmBackend::kSim, shards));
    expect_frames_equal(result.frames, single.frames,
                        "sim shards=" + std::to_string(shards));
    ASSERT_EQ(static_cast<int>(result.shards.size()), shards);
    // Every owned frame completed at its shard, none anywhere else.
    std::int64_t completed = 0;
    for (const ShardReport& s : result.shards) {
      completed += s.frames_completed;
      EXPECT_EQ(s.decode_failures, 0);
      EXPECT_EQ(s.chain_rejects, 0);
    }
    EXPECT_EQ(completed, scene.frame_count());
    EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  }
}

TEST(ShardFarm, SchedulerSeesDigestsNotPixels) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  const FarmResult result =
      render_farm(scene, shard_config(FarmBackend::kSim, 3));
  // The bottleneck the subsystem removes: zero frame-payload bytes at the
  // scheduler endpoint; every pixel landed on a shard endpoint instead.
  EXPECT_EQ(result.metrics.counter("endpoint.0.frame_bytes"), 0u);
  EXPECT_GT(result.metrics.counter("endpoint.0.digest_bytes"), 0u);
  std::uint64_t shard_frame_bytes = 0;
  const ShardMap map{3, 3, scene.frame_count()};
  for (int s = 0; s < 3; ++s) {
    const std::string name = "endpoint." +
                             std::to_string(map.rank_of_shard(s)) +
                             ".frame_bytes";
    shard_frame_bytes += result.metrics.counter(name);
  }
  EXPECT_GT(shard_frame_bytes, 0u);
  EXPECT_EQ(result.metrics.counter("net.frame_decode_failures"), 0u);
}

TEST(ShardFarm, ThreadsShardsAreByteIdentical) {
  const AnimatedScene scene = orbit_scene(2, 9, 40, 30);
  const FarmResult result =
      render_farm(scene, shard_config(FarmBackend::kThreads, 2));
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, FarmConfig().coherence.trace);
  expect_frames_equal(result.frames, ref, "threads shards=2");
}

TEST(ShardFarm, TcpShardsAreByteIdentical) {
  const AnimatedScene scene = orbit_scene(2, 9, 40, 30);
  const FarmResult result =
      render_farm(scene, shard_config(FarmBackend::kTcp, 2));
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, FarmConfig().coherence.trace);
  expect_frames_equal(result.frames, ref, "tcp shards=2");
}

TEST(ShardFarm, ShardCountAboveFrameCountIsRejected) {
  const AnimatedScene scene = orbit_scene(2, 6, 40, 30);
  FarmConfig config = shard_config(FarmBackend::kSim, scene.frame_count() + 1);
  EXPECT_THROW(validate_farm_config(scene, config), std::invalid_argument);
  config.shards = 0;
  EXPECT_THROW(validate_farm_config(scene, config), std::invalid_argument);
}

TEST(ShardFarm, DroppedMessagesWithShardsRequireTheDetector) {
  // A result lost between worker and shard is invisible to the scheduler
  // until a lease expires; without the detector the run would hang.
  const AnimatedScene scene = orbit_scene(2, 6, 40, 30);
  FarmConfig config = shard_config(FarmBackend::kSim, 2);
  config.fault_plan.events.push_back(
      FaultPlan::drop_nth(1, 1, kTagFrameResult));
  EXPECT_THROW(validate_farm_config(scene, config), std::invalid_argument);
  config.fault.enabled = true;
  EXPECT_NO_THROW(validate_farm_config(scene, config));
}

// -- Faults against the sharded topology ------------------------------------

FarmConfig sim_shard_fault_config(int shards) {
  FarmConfig config = shard_config(FarmBackend::kSim, shards);
  config.worker_speeds = {1.0, 1.0, 1.0};
  config.fault.enabled = true;
  config.fault.lease_base_seconds = 8.0;
  config.fault.lease_per_frame_seconds = 4.0;
  config.fault.ping_grace_seconds = 3.0;
  return config;
}

TEST(ShardFault, WorkerDeathMidCommitIsRecoveredPixelExact) {
  // The crash fires immediately after the worker's second frame-result send
  // — mid-way through committing its task to the owning shard. The shard
  // keeps the committed prefix; the reassigned remainder restarts dense.
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config = sim_shard_fault_config(2);
  config.fault_plan.events.push_back(FaultPlan::crash_after_frames(1, 2));

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.faults.deaths_detected, 1);
  EXPECT_GE(result.faults.tasks_reassigned, 1);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "shard-death");
}

TEST(ShardFault, DroppedResultIsReclaimedPixelExact) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config = sim_shard_fault_config(2);
  config.fault_plan.events.push_back(
      FaultPlan::drop_nth(1, 2, kTagFrameResult));

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "shard-drop");
}

TEST(ShardFault, CrashedWorkerRejoinsAndStaysPixelExact) {
  // No detector and no adaptive stealing: the dead rank's range stays its
  // own, so the run can only complete through the rejoin path — completion
  // itself proves the revived worker re-rendered its range onto the shards.
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config = shard_config(FarmBackend::kSim, 2);
  config.worker_speeds = {1.0, 1.0, 1.0};
  config.partition.adaptive = false;
  config.fault_plan.events.push_back(FaultPlan::crash_at(1, 2.0));
  config.fault_plan.events.push_back(FaultPlan::rejoin_at(1, 50.0));

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.metrics.counter("fault.crashes"), 1u);
  EXPECT_EQ(result.metrics.counter("fault.rejoins"), 1u);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "shard-rejoin");
}

TEST(ShardFault, SpeculationStaysPixelExact) {
  const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  FarmConfig config = shard_config(FarmBackend::kSim, 2);
  config.worker_speeds = {1.0, 1.0, 0.2};  // one straggler: the end-game
  config.partition.adaptive = false;
  config.speculation = true;

  const FarmResult result = render_farm(scene, config);
  EXPECT_GE(result.faults.speculations_launched, 1);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "shard-speculation");
}

TEST(ShardFault, TcpWorkerCrashSeversMeshSocketsAndIsSurvived) {
  const AnimatedScene scene = orbit_scene(2, 9, 40, 30);
  FarmConfig config = shard_config(FarmBackend::kTcp, 2);
  config.fault.enabled = true;
  config.fault.lease_base_seconds = 0.4;
  config.fault.lease_per_frame_seconds = 0.05;
  config.fault.ping_grace_seconds = 0.25;
  config.fault_plan.events.push_back(FaultPlan::crash_after_frames(1, 1));

  const FarmResult result = render_farm(scene, config);
  EXPECT_EQ(result.faults.deaths_detected, 1);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "tcp-shard-crash");
}

// -- Crash-consistent sharded resume ----------------------------------------

FarmConfig shard_journal_config(const std::string& dir, int shards) {
  FarmConfig config = shard_config(FarmBackend::kSim, shards);
  config.output_dir = dir;
  config.output_prefix = "frame";
  config.journal_path = dir + "/render.journal";
  config.journal_fsync = false;        // replay logic under test, not disks
  config.journal_checkpoint_every = 2; // force checkpoint records into play
  return config;
}

TEST(ShardResume, ByteIdenticalFromEverySegmentBoundary) {
  const AnimatedScene scene = orbit_scene(3, 6, 48, 36);
  const int kShards = 2;
  const std::string base = unique_dir("shard_resume_base");
  const FarmConfig base_config = shard_journal_config(base, kShards);
  const FarmResult clean = render_farm(scene, base_config);
  ASSERT_EQ(clean.master.frames_completed, scene.frame_count());

  const std::string sched_bytes = read_file(base_config.journal_path);
  std::vector<std::string> seg_bytes(kShards);
  std::vector<JournalReplay> seg_replay(kShards);
  for (int s = 0; s < kShards; ++s) {
    const std::string path = shard_journal_path(base_config.journal_path, s);
    seg_bytes[s] = read_file(path);
    seg_replay[s] = replay_journal(path);
    ASSERT_TRUE(seg_replay[s].ok) << seg_replay[s].error;
    ASSERT_EQ(seg_replay[s].header.shard_count, kShards);
    ASSERT_EQ(seg_replay[s].header.shard_index, s);
    ASSERT_GE(seg_replay[s].record_offsets.size(), 2u);
  }

  // A crash leaves each shard's segment cut at an arbitrary record boundary
  // (or torn mid-record). Cut one segment at every boundary while the other
  // survives whole — the frame files present are a conservative superset of
  // what any segment prefix declares complete.
  for (int victim = 0; victim < kShards; ++victim) {
    std::vector<std::size_t> cuts(seg_replay[victim].record_offsets);
    cuts.push_back(seg_replay[victim].record_offsets[0] + 7);  // torn tail
    for (const std::size_t cut : cuts) {
      ASSERT_LE(cut, seg_bytes[victim].size());
      const std::string dir = unique_dir("shard_resume_cut");
      FarmConfig config = shard_journal_config(dir, kShards);
      write_file(config.journal_path, sched_bytes);
      for (int s = 0; s < kShards; ++s) {
        write_file(shard_journal_path(config.journal_path, s),
                   s == victim ? seg_bytes[s].substr(0, cut) : seg_bytes[s]);
      }
      for (int f = 0; f < scene.frame_count(); ++f) {
        write_file(frame_file_path(dir, "frame", f),
                   read_file(frame_file_path(base, "frame", f)));
      }

      config.resume = true;
      const FarmResult result = render_farm(scene, config);
      const std::string label = "shard" + std::to_string(victim) + "@cut" +
                                std::to_string(cut);
      ASSERT_TRUE(result.resume.resumed) << label;
      std::int64_t restored = 0;
      std::int64_t completed = 0;
      for (const ShardReport& s : result.shards) {
        restored += s.frames_restored;
        completed += s.frames_completed;
      }
      EXPECT_EQ(restored, result.resume.frames_restored) << label;
      // Restored and re-rendered frames partition the animation exactly, on
      // both the scheduler's ledger and the shards' own counters.
      EXPECT_EQ(restored + result.master.frames_completed,
                scene.frame_count())
          << label;
      EXPECT_EQ(restored + completed, scene.frame_count()) << label;
      expect_frames_equal(result.frames, clean.frames, label);
      for (int f = 0; f < scene.frame_count(); ++f) {
        EXPECT_EQ(read_file(frame_file_path(dir, "frame", f)),
                  read_file(frame_file_path(base, "frame", f)))
            << label << " frame " << f;
      }
      // Every segment is whole again after the resumed run.
      for (int s = 0; s < kShards; ++s) {
        const JournalReplay after =
            replay_journal(shard_journal_path(config.journal_path, s));
        ASSERT_TRUE(after.ok) << label << " " << after.error;
        EXPECT_FALSE(after.truncated_tail) << label;
        const auto [first, end] = ShardMap{kShards, 3, scene.frame_count()}
                                      .range_of(s);
        for (int f = first; f < end; ++f) {
          EXPECT_TRUE(after.frame_complete[f]) << label << " frame " << f;
        }
      }
    }
  }
}

TEST(ShardResume, MissingSegmentRerendersItsRangeByteIdentically) {
  const AnimatedScene scene = orbit_scene(3, 6, 48, 36);
  const std::string base = unique_dir("shard_resume_lost_base");
  const FarmConfig base_config = shard_journal_config(base, 2);
  const FarmResult clean = render_farm(scene, base_config);

  const std::string dir = unique_dir("shard_resume_lost");
  FarmConfig config = shard_journal_config(dir, 2);
  write_file(config.journal_path, read_file(base_config.journal_path));
  // Segment 1 is gone entirely (lost disk): its range re-renders from
  // scratch while segment 0's restored frames are kept. The remove guards
  // against temp-dir reuse across test invocations — this test needs the
  // file to be absent, not merely unwritten.
  write_file(shard_journal_path(config.journal_path, 0),
             read_file(shard_journal_path(base_config.journal_path, 0)));
  std::remove(shard_journal_path(config.journal_path, 1).c_str());
  for (int f = 0; f < scene.frame_count(); ++f) {
    write_file(frame_file_path(dir, "frame", f),
               read_file(frame_file_path(base, "frame", f)));
  }

  config.resume = true;
  const FarmResult result = render_farm(scene, config);
  ASSERT_TRUE(result.resume.resumed);
  EXPECT_GT(result.shards[0].frames_restored, 0);
  EXPECT_EQ(result.shards[1].frames_restored, 0);
  EXPECT_GT(result.master.frames_completed, 0);
  expect_frames_equal(result.frames, clean.frames, "lost-segment");
}

TEST(ShardResume, ShardCountChangeOnResumeIsRejected) {
  const AnimatedScene scene = orbit_scene(3, 6, 48, 36);
  const std::string dir = unique_dir("shard_resume_mismatch");
  render_farm(scene, shard_journal_config(dir, 2));

  // 2 → 3, 2 → 1: both directions are hard errors naming the flag — a
  // silent remap would interleave two incompatible ownership layouts.
  for (const int new_count : {3, 1}) {
    FarmConfig config = shard_journal_config(dir, new_count);
    config.resume = true;
    try {
      render_farm(scene, config);
      FAIL() << "resume with shards=" << new_count
             << " over a shards=2 journal must throw";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("--shards"), std::string::npos)
          << e.what();
    }
  }
}

TEST(ShardResume, SingleMasterJournalRejectsShardedResume) {
  const AnimatedScene scene = orbit_scene(3, 6, 48, 36);
  const std::string dir = unique_dir("shard_resume_up");
  render_farm(scene, shard_journal_config(dir, 1));

  FarmConfig config = shard_journal_config(dir, 2);
  config.resume = true;
  EXPECT_THROW(render_farm(scene, config), std::invalid_argument);
}

}  // namespace
}  // namespace now
