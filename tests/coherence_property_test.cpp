// Property-based validation of the frame-coherence algorithm over randomized
// animated scenes: for any scene, any coherence grid resolution and any
// region, the coherent render must equal the full render byte-for-byte, and
// the predicted dirty set must contain every actually-changed pixel.
#include <gtest/gtest.h>

#include "src/core/coherent_renderer.h"
#include "src/geom/triangle.h"
#include "src/scene/builtin_scenes.h"

namespace now {
namespace {

struct PropertyCase {
  std::uint64_t seed;
  int objects;
  int frames;
  int grid_axis;  // coherence grid max axis
  bool supersample;
};

std::ostream& operator<<(std::ostream& os, const PropertyCase& c) {
  return os << "seed=" << c.seed << " objects=" << c.objects
            << " frames=" << c.frames << " grid=" << c.grid_axis
            << (c.supersample ? " ss" : "");
}

class CoherenceProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(CoherenceProperty, CoherentEqualsFullRender) {
  const PropertyCase& pc = GetParam();
  Rng rng(pc.seed);
  const AnimatedScene scene = random_scene(&rng, pc.objects, pc.frames);

  CoherenceOptions options;
  options.grid_max_axis = pc.grid_axis;
  if (pc.supersample) options.trace.supersample_axis = 2;

  CoherentRenderer renderer(
      scene, {0, 0, scene.width(), scene.height()}, options);
  Framebuffer fb(scene.width(), scene.height());
  Framebuffer prev;
  for (int frame = 0; frame < scene.frame_count(); ++frame) {
    PixelMask predicted;
    if (frame > 0) predicted = renderer.predict_dirty(frame);

    renderer.render_frame(frame, &fb);
    const Framebuffer ref = render_world(scene.world_at(frame), scene.width(),
                                         scene.height(), options.trace);
    ASSERT_EQ(fb, ref) << GetParam() << " frame " << frame;

    if (frame > 0) {
      const PixelMask actual = actual_diff_mask(prev, fb);
      ASSERT_TRUE(actual.subset_of(predicted))
          << GetParam() << " frame " << frame << ": "
          << actual.minus(predicted).count() << " false negatives";
    }
    prev = fb;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomScenes, CoherenceProperty,
    ::testing::Values(PropertyCase{101, 4, 4, 16, false},
                      PropertyCase{102, 6, 4, 32, false},
                      PropertyCase{103, 8, 3, 8, false},
                      PropertyCase{104, 5, 4, 64, false},
                      PropertyCase{105, 10, 3, 24, false},
                      PropertyCase{106, 4, 3, 16, true},
                      PropertyCase{107, 7, 4, 12, false},
                      PropertyCase{108, 3, 6, 40, false},
                      PropertyCase{109, 9, 3, 20, false},
                      PropertyCase{110, 6, 4, 6, false}));

/// Region-restricted coherence must hold for arbitrary subareas too (the
/// frame-division workers run exactly this configuration).
class RegionCoherenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(RegionCoherenceProperty, SubareaCoherentEqualsFullRender) {
  Rng rng(500 + GetParam());
  const AnimatedScene scene = random_scene(&rng, 6, 4);
  Rng region_rng(900 + GetParam());
  const int w = scene.width();
  const int h = scene.height();
  PixelRect region;
  region.width = 8 + static_cast<int>(region_rng.next_below(static_cast<std::uint32_t>(w - 8)));
  region.height = 8 + static_cast<int>(region_rng.next_below(static_cast<std::uint32_t>(h - 8)));
  region.x0 = static_cast<int>(region_rng.next_below(static_cast<std::uint32_t>(w - region.width + 1)));
  region.y0 = static_cast<int>(region_rng.next_below(static_cast<std::uint32_t>(h - region.height + 1)));

  CoherentRenderer renderer(scene, region);
  Framebuffer fb(w, h);
  for (int frame = 0; frame < scene.frame_count(); ++frame) {
    renderer.render_frame(frame, &fb);
    const Framebuffer ref = render_world(scene.world_at(frame), w, h);
    for (int y = region.y0; y < region.y0 + region.height; ++y) {
      for (int x = region.x0; x < region.x0 + region.width; ++x) {
        ASSERT_EQ(fb.at(x, y), ref.at(x, y))
            << "seed " << GetParam() << " frame " << frame << " px " << x
            << "," << y;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Regions, RegionCoherenceProperty,
                         ::testing::Range(0, 8));

/// Every primitive type moving at once (sphere, box, cylinder, disc,
/// triangle, mesh): the change detector's per-shape footprint tests must all
/// be conservative.
TEST(GalleryCoherence, AllPrimitiveTypesStayCoherent) {
  const AnimatedScene scene = gallery_scene(5);
  CoherentRenderer renderer(scene, {0, 0, scene.width(), scene.height()});
  Framebuffer fb(scene.width(), scene.height());
  Framebuffer prev;
  for (int frame = 0; frame < scene.frame_count(); ++frame) {
    PixelMask predicted;
    if (frame > 0) predicted = renderer.predict_dirty(frame);
    const FrameRenderResult r = renderer.render_frame(frame, &fb);
    const Framebuffer ref =
        render_world(scene.world_at(frame), scene.width(), scene.height());
    ASSERT_EQ(fb, ref) << "frame " << frame;
    if (frame > 0) {
      const PixelMask actual = actual_diff_mask(prev, fb);
      ASSERT_TRUE(actual.subset_of(predicted))
          << "frame " << frame << ": "
          << actual.minus(predicted).count() << " false negatives";
      EXPECT_LT(r.pixels_recomputed, r.pixels_total) << "frame " << frame;
    }
    prev = fb;
  }
}

TEST(GalleryCoherence, IcosphereMeshIsWellFormed) {
  const auto mesh_prim = make_icosphere({0, 0, 0}, 1.0, 2);
  const auto* mesh = dynamic_cast<const Mesh*>(mesh_prim.get());
  ASSERT_NE(mesh, nullptr);
  EXPECT_EQ(mesh->triangle_count(), 20 * 4 * 4);  // 2 subdivision passes
  // All vertices on the unit sphere.
  for (const Vec3& v : mesh->vertices()) {
    EXPECT_NEAR(v.length(), 1.0, 1e-12);
  }
  // Rays through the center hit near t = |origin| - 1 (slightly beyond:
  // the faceted surface lies inside the circumscribed sphere).
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Vec3 origin = rng.unit_vector() * 5.0;
    Hit hit;
    ASSERT_TRUE(mesh->intersect({origin, -origin.normalized()}, 1e-9, 1e9, &hit));
    EXPECT_GT(hit.t, 3.9);
    EXPECT_LT(hit.t, 4.1);
  }
}

}  // namespace
}  // namespace now
