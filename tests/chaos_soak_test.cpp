// The chaos-soak harness and the single-death survival gates: seeded random
// fault schedules (kills, drops, duplicates, reorders, delays, slowdowns)
// composed across every rank class must leave the rendered animation
// byte-identical to a fault-free run; a killed framebuffer shard must be
// detected, rolled back, and rebuilt from its journal segment; a killed
// scheduler must restart from its checkpoint via --resume. Every failure
// message carries the resolved fault schedule and the seed that generated
// it, so any red iteration can be replayed exactly:
//   render_farm_cli --chaos-seed <seed> ...
#include "src/fault/chaos.h"

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "src/ckpt/journal.h"
#include "src/ckpt/recovery.h"
#include "src/par/protocol.h"
#include "src/par/render_farm.h"
#include "src/par/serial.h"
#include "src/scene/builtin_scenes.h"

namespace now {
namespace {

std::string unique_dir(const std::string& stem) {
  static int counter = 0;
  std::string dir = ::testing::TempDir();
  if (!dir.empty() && dir.back() == '/') dir.pop_back();
  dir += "/" + stem + "_" +
         std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
         "_" + std::to_string(counter++);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary);
  f << bytes;
}

void expect_frames_equal(const std::vector<Framebuffer>& got,
                         const std::vector<Framebuffer>& want,
                         const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t f = 0; f < got.size(); ++f) {
    ASSERT_EQ(got[f], want[f]) << label << " frame " << f;
  }
}

std::vector<Framebuffer> reference_frames(const AnimatedScene& scene,
                                          const TraceOptions& trace) {
  std::vector<Framebuffer> out;
  for (int f = 0; f < scene.frame_count(); ++f) {
    out.push_back(
        render_world(scene.world_at(f), scene.width(), scene.height(), trace));
  }
  return out;
}

// -- ChaosRng / make_chaos_plan ---------------------------------------------

TEST(ChaosPlan, SameSeedSamePlanDifferentSeedsDiffer) {
  ChaosConfig config;
  config.seed = 42;
  config.worker_count = 3;
  config.shard_count = 2;
  config.journaled = true;
  config.result_tag = kTagFrameResult;
  const std::string a = describe_fault_plan(make_chaos_plan(config));
  const std::string b = describe_fault_plan(make_chaos_plan(config));
  EXPECT_EQ(a, b) << "a seed must name exactly one schedule";

  // Adjacent seeds decorrelate: across a small window, at least one
  // schedule differs from seed 42's.
  bool any_different = false;
  for (std::uint64_t s = 43; s < 48; ++s) {
    ChaosConfig other = config;
    other.seed = s;
    if (describe_fault_plan(make_chaos_plan(other)) != a) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(ChaosPlan, EveryGeneratedPlanIsLegal) {
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    ChaosConfig config;
    config.seed = seed;
    config.worker_count = 1 + static_cast<int>(seed % 4);
    config.shard_count = static_cast<int>(seed % 3);  // 0/1 unsharded, 2 sharded
    config.journaled = (seed % 2) == 0;
    config.sim = (seed % 5) != 0;
    config.result_tag = kTagFrameResult;
    const FaultPlan plan = make_chaos_plan(config);

    const bool sharded = config.shard_count > 1;
    const int world = 1 + config.worker_count +
                      (sharded ? config.shard_count : 0);
    ASSERT_NO_THROW(validate_fault_plan(plan, world))
        << "seed " << seed << "\n" << describe_fault_plan(plan);

    std::set<int> crashed_ranks;
    for (const FaultEvent& e : plan.events) {
      if (e.kind == FaultKind::kCrash) {
        EXPECT_TRUE(crashed_ranks.insert(e.rank).second)
            << "seed " << seed << ": two crashes on rank " << e.rank;
        EXPECT_NE(e.rank, 0) << "seed " << seed
                             << ": the generator must never kill rank 0";
        if (e.rank > config.worker_count) {
          EXPECT_TRUE(config.journaled)
              << "seed " << seed << ": shard kill without a journal";
        }
        EXPECT_TRUE(plan.rank_rejoins(e.rank))
            << "seed " << seed << ": crash without a paired rejoin";
      }
      if (e.kind == FaultKind::kSlowdown) {
        EXPECT_TRUE(config.sim)
            << "seed " << seed << ": slowdown generated for a non-sim run";
      }
      if (e.kind == FaultKind::kDropMessage ||
          e.kind == FaultKind::kDuplicateMessage ||
          e.kind == FaultKind::kReorderMessage) {
        EXPECT_EQ(e.tag, kTagFrameResult) << "seed " << seed;
      }
    }
  }
}

// -- The soak itself ---------------------------------------------------------

const AnimatedScene& soak_scene() {
  static const AnimatedScene scene = orbit_scene(3, 12, 48, 36);
  return scene;
}

const std::vector<Framebuffer>& soak_reference() {
  static const std::vector<Framebuffer> ref =
      reference_frames(soak_scene(), FarmConfig().coherence.trace);
  return ref;
}

FarmConfig soak_config(int shards) {
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds = {1.0, 1.0, 1.0};
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = true;
  config.partition.min_split_frames = 2;
  config.shards = shards;
  config.fault.enabled = true;
  config.fault.lease_base_seconds = 8.0;
  config.fault.lease_per_frame_seconds = 4.0;
  config.fault.ping_grace_seconds = 3.0;
  return config;
}

/// One soak iteration: expand the seed, render under the schedule, demand
/// byte-identity. The failure message is the replay recipe (satellite
/// requirement: every red iteration prints its schedule and seed).
void run_soak_seed(std::uint64_t seed, int shards) {
  ChaosConfig chaos;
  chaos.seed = seed;
  chaos.worker_count = 3;
  chaos.shard_count = shards;
  chaos.journaled = shards > 1;
  chaos.sim = true;
  chaos.result_tag = kTagFrameResult;
  const FaultPlan plan = make_chaos_plan(chaos);
  SCOPED_TRACE("chaos seed " + std::to_string(seed) +
               " (replay: render_farm_cli --chaos-seed " +
               std::to_string(seed) + ")\n" + describe_fault_plan(plan));

  FarmConfig config = soak_config(shards);
  config.fault_plan = plan;
  if (shards > 1) {
    const std::string dir = unique_dir("chaos_soak");
    config.output_dir = dir;
    config.output_prefix = "frame";
    config.journal_path = dir + "/render.journal";
    config.journal_fsync = false;
    config.journal_checkpoint_every = 2;
  }
  const FarmResult result = render_farm(soak_scene(), config);
  ASSERT_EQ(result.master.frames_completed + result.master.frames_restored,
            soak_scene().frame_count());
  expect_frames_equal(result.frames, soak_reference(),
                      "seed " + std::to_string(seed));
}

TEST(ChaosSoak, UnshardedSeedsAreByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) run_soak_seed(seed, 1);
}

TEST(ChaosSoak, ShardedJournaledSeedsAreByteIdentical) {
  for (std::uint64_t seed = 11; seed <= 20; ++seed) run_soak_seed(seed, 2);
}

TEST(ChaosSoak, ChaosRunReplaysBitIdentically) {
  ChaosConfig chaos;
  chaos.seed = 7;
  chaos.worker_count = 3;
  chaos.shard_count = 1;
  chaos.result_tag = kTagFrameResult;
  FarmConfig config = soak_config(1);
  config.fault_plan = make_chaos_plan(chaos);

  const FarmResult a = render_farm(soak_scene(), config);
  const FarmResult b = render_farm(soak_scene(), config);
  EXPECT_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(a.runtime.messages, b.runtime.messages);
  EXPECT_EQ(a.runtime.bytes, b.runtime.bytes);
  EXPECT_EQ(a.faults.deaths_detected, b.faults.deaths_detected);
  EXPECT_EQ(a.faults.shards_failed, b.faults.shards_failed);
  expect_frames_equal(a.frames, b.frames, "chaos-replay");
}

// -- Shard failover ----------------------------------------------------------

FarmConfig shard_failover_config(const std::string& dir) {
  FarmConfig config = soak_config(2);
  config.output_dir = dir;
  config.output_prefix = "frame";
  config.journal_path = dir + "/render.journal";
  config.journal_fsync = false;
  config.journal_checkpoint_every = 2;
  return config;
}

std::int64_t total_rebuilds(const FarmResult& result) {
  std::int64_t n = 0;
  for (const ShardReport& s : result.shards) n += s.rebuilds;
  return n;
}

TEST(ShardFailover, KilledShardIsDetectedRolledBackAndRebuilt) {
  // Workers are ranks 1..3, shards 4..5. Kill shard rank 4 after its second
  // digest — mid-way through its owned range — and bring the replacement up
  // only after the liveness lease has declared the death (lease 8s + grace
  // 3s < 20s), so the detect → rollback → hold → rebuild → re-dispatch path
  // runs end to end.
  const std::string dir = unique_dir("shard_failover");
  FarmConfig config = shard_failover_config(dir);
  config.fault_plan.events.push_back(FaultPlan::crash_after_frames(4, 2));
  config.fault_plan.events.push_back(FaultPlan::rejoin_after_crash(4, 20.0));

  const FarmResult result = render_farm(soak_scene(), config);
  EXPECT_EQ(result.faults.shards_failed, 1);
  EXPECT_EQ(result.faults.shards_rejoined, 1);
  EXPECT_GE(result.faults.shard_commits_rolled_back, 0);
  EXPECT_GE(total_rebuilds(result), 1);
  EXPECT_EQ(result.master.frames_completed, soak_scene().frame_count());
  expect_frames_equal(result.frames, soak_reference(), "shard-failover");
  EXPECT_EQ(result.metrics.counter("recovery.shards_failed"), 1u);
  EXPECT_EQ(result.metrics.counter("recovery.shards_rejoined"), 1u);
}

TEST(ShardFailover, RejoinBeforeDetectionStillRecovers) {
  // The shard restarts 1s after its crash — long before the lease (8s)
  // expires. Its Hello arrives while the scheduler still believes it alive;
  // the scheduler must roll the shard back anyway (its memory is gone) and
  // the run must stay byte-identical.
  const std::string dir = unique_dir("shard_fast_rejoin");
  FarmConfig config = shard_failover_config(dir);
  config.fault_plan.events.push_back(FaultPlan::crash_after_frames(5, 1));
  config.fault_plan.events.push_back(FaultPlan::rejoin_after_crash(5, 1.0));

  const FarmResult result = render_farm(soak_scene(), config);
  EXPECT_EQ(result.faults.shards_rejoined, 1);
  EXPECT_GE(total_rebuilds(result), 1);
  EXPECT_EQ(result.master.frames_completed, soak_scene().frame_count());
  expect_frames_equal(result.frames, soak_reference(), "fast-rejoin");
}

TEST(ShardFailover, FailoverAtEveryCommitBoundaryIsByteIdentical) {
  // Property sweep: kill the shard after its k-th committed digest for every
  // k that can fire mid-range. Each boundary exercises a different split of
  // durable (journaled, completed) versus rolled-back (re-rendered) frames.
  for (int k = 1; k <= 5; ++k) {
    SCOPED_TRACE("kill after digest " + std::to_string(k));
    const std::string dir = unique_dir("shard_boundary");
    FarmConfig config = shard_failover_config(dir);
    config.fault_plan.events.push_back(FaultPlan::crash_after_frames(4, k));
    config.fault_plan.events.push_back(FaultPlan::rejoin_after_crash(4, 20.0));

    const FarmResult result = render_farm(soak_scene(), config);
    EXPECT_GE(result.faults.shards_rejoined, 1);
    ASSERT_EQ(result.master.frames_completed, soak_scene().frame_count());
    expect_frames_equal(result.frames, soak_reference(),
                        "boundary k=" + std::to_string(k));
  }
}

TEST(ShardFailover, TcpKilledShardRebuildsAndCompletes) {
  // Real sockets: the killed shard's links are severed, the replacement
  // re-dials rank 0, rebuilds from its journal segment, and the farm
  // finishes byte-identical to the serial reference.
  const AnimatedScene scene = orbit_scene(2, 9, 40, 30);
  const std::string dir = unique_dir("tcp_shard_kill");
  FarmConfig config;
  config.backend = FarmBackend::kTcp;
  config.workers = 3;
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = true;
  config.partition.min_split_frames = 2;
  config.shards = 2;
  config.output_dir = dir;
  config.output_prefix = "frame";
  config.journal_path = dir + "/render.journal";
  config.journal_fsync = false;
  config.journal_checkpoint_every = 2;
  config.fault.enabled = true;
  config.fault.lease_base_seconds = 0.4;
  config.fault.lease_per_frame_seconds = 0.05;
  config.fault.ping_grace_seconds = 0.25;
  // Shard ranks are 4..5; the rejoin lands whichever side of detection the
  // scheduler happens to be on — both paths must converge.
  config.fault_plan.events.push_back(FaultPlan::crash_after_frames(4, 1));
  config.fault_plan.events.push_back(FaultPlan::rejoin_after_crash(4, 0.5));

  const FarmResult result = render_farm(scene, config);
  EXPECT_GE(result.faults.shards_rejoined, 1);
  EXPECT_GE(total_rebuilds(result), 1);
  EXPECT_EQ(result.master.frames_completed, scene.frame_count());
  const auto ref = reference_frames(scene, config.coherence.trace);
  expect_frames_equal(result.frames, ref, "tcp-shard-kill");
}

// -- Scheduler checkpoint / restart ------------------------------------------

FarmConfig scheduler_journal_config(const std::string& dir) {
  FarmConfig config;
  config.backend = FarmBackend::kSim;
  config.worker_speeds = {1.0, 0.5, 1.5};
  config.partition.scheme = PartitionScheme::kSequenceDivision;
  config.partition.adaptive = true;
  config.partition.min_split_frames = 2;
  config.output_dir = dir;
  config.output_prefix = "frame";
  config.journal_path = dir + "/render.journal";
  config.journal_fsync = false;
  config.journal_checkpoint_every = 2;
  return config;
}

TEST(SchedulerRestart, KillAtAnyVirtualTimeThenResumeIsByteIdentical) {
  const AnimatedScene scene = orbit_scene(3, 6, 48, 36);
  const std::string base = unique_dir("sched_base");
  const FarmResult clean = render_farm(scene, scheduler_journal_config(base));
  ASSERT_EQ(clean.master.frames_completed, scene.frame_count());

  for (const double kill_time : {1.0, 3.0, 6.0, 12.0}) {
    SCOPED_TRACE("scheduler killed at t=" + std::to_string(kill_time));
    const std::string dir = unique_dir("sched_kill");
    FarmConfig config = scheduler_journal_config(dir);
    config.fault_plan.events.push_back(FaultPlan::crash_at(0, kill_time));
    const FarmResult partial = render_farm(scene, config);
    // Rank 0 is dead: the run ends with whatever reached disk. The journal
    // prefix plus frame files are exactly what a restart has to work with.
    ASSERT_LE(partial.master.frames_completed, scene.frame_count());

    FarmConfig restart = scheduler_journal_config(dir);
    restart.resume = true;
    const FarmResult result = render_farm(scene, restart);
    ASSERT_TRUE(result.resume.resumed);
    EXPECT_EQ(result.master.frames_completed + result.resume.frames_restored,
              scene.frame_count());
    expect_frames_equal(result.frames, clean.frames,
                        "kill@" + std::to_string(kill_time));
    for (int f = 0; f < scene.frame_count(); ++f) {
      EXPECT_EQ(read_file(frame_file_path(dir, "frame", f)),
                read_file(frame_file_path(base, "frame", f)))
          << "frame " << f;
    }
  }
}

TEST(SchedulerRestart, ResumeRestoresFromEveryCheckpointInterval) {
  // Sweep the checkpoint cadence, cut the journal at every record boundary,
  // and restart: whenever the surviving prefix holds a checkpoint the
  // scheduler must restore from it (flag reported) — and the result must be
  // byte-identical either way.
  const AnimatedScene scene = orbit_scene(3, 6, 48, 36);
  for (const int interval : {1, 3}) {
    const std::string base = unique_dir("ckpt_int_base");
    FarmConfig base_config = scheduler_journal_config(base);
    base_config.journal_checkpoint_every = interval;
    const FarmResult clean = render_farm(scene, base_config);
    ASSERT_EQ(clean.master.frames_completed, scene.frame_count());

    const std::string journal_bytes = read_file(base_config.journal_path);
    const JournalReplay full = replay_journal(base_config.journal_path);
    ASSERT_TRUE(full.ok) << full.error;

    // Every third record boundary keeps the sweep quick while still
    // crossing several checkpoint intervals.
    for (std::size_t i = 0; i < full.record_offsets.size(); i += 3) {
      const std::size_t cut = full.record_offsets[i];
      SCOPED_TRACE("interval " + std::to_string(interval) + " cut@" +
                   std::to_string(cut));
      const std::string dir = unique_dir("ckpt_int_cut");
      write_file(dir + "/render.journal", journal_bytes.substr(0, cut));
      for (int f = 0; f < scene.frame_count(); ++f) {
        write_file(frame_file_path(dir, "frame", f),
                   read_file(frame_file_path(base, "frame", f)));
      }
      // Snapshot what the surviving prefix holds before the resume run
      // re-opens and extends the file.
      const JournalReplay prefix = replay_journal(dir + "/render.journal");
      ASSERT_TRUE(prefix.ok) << prefix.error;
      const bool prefix_has_checkpoint = prefix.last_checkpoint.has_value();

      FarmConfig config = scheduler_journal_config(dir);
      config.journal_checkpoint_every = interval;
      config.resume = true;
      const FarmResult result = render_farm(scene, config);
      ASSERT_TRUE(result.resume.resumed);
      EXPECT_EQ(result.resume.scheduler_checkpoint, prefix_has_checkpoint);
      expect_frames_equal(result.frames, clean.frames, "restore");
    }
  }
}

}  // namespace
}  // namespace now
